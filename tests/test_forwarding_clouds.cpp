// Forwarding across clouds: foreign-cloud vantage points, inter-cloud
// peerings, redundant-session egress splitting, and ECMP determinism.
#include <gtest/gtest.h>

#include <unordered_set>

#include "controlplane/bgp.h"
#include "dataplane/forwarding.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

class CloudForwardingTest : public ::testing::Test {
 protected:
  CloudForwardingTest()
      : world_(small_world()), sim_(world_), forwarder_(world_, sim_) {}

  VantagePoint vp(CloudProvider provider, std::size_t index = 0) const {
    const auto regions = world_.regions_of(provider);
    return VantagePoint::cloud_vm(provider, regions[index], "vm");
  }

  const World& world_;
  BgpSimulator sim_;
  Forwarder forwarder_;
};

TEST_F(CloudForwardingTest, EveryCloudReachesClientSpace) {
  for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p) {
    const auto provider = static_cast<CloudProvider>(p);
    int delivered = 0;
    int tried = 0;
    for (const AutonomousSystem& as : world_.ases) {
      if (as.type == AsType::kCloud || as.announced_prefixes.empty())
        continue;
      if (++tried > 40) break;
      const ForwardPath path = forwarder_.path(
          vp(provider), as.announced_prefixes.front().network().next(1));
      if (path.outcome == PathOutcome::kDelivered) ++delivered;
    }
    EXPECT_GT(delivered, tried / 2) << to_string(provider);
  }
}

TEST_F(CloudForwardingTest, AmazonReachesOtherCloudsViaInterCloudPeering) {
  // The inter-cloud interconnects give Amazon direct routes to the other
  // clouds' announced space.
  for (const CloudProvider other :
       {CloudProvider::kMicrosoft, CloudProvider::kGoogle}) {
    const AsId primary = world_.cloud_primary(other);
    const Ipv4 target =
        world_.ases[primary.value].announced_prefixes.front().network().next(1);
    const ForwardPath path = forwarder_.path(vp(CloudProvider::kAmazon),
                                             target);
    EXPECT_EQ(path.outcome, PathOutcome::kDelivered) << to_string(other);
    ASSERT_TRUE(path.egress_interconnect.valid());
    // The egress is an inter-cloud interconnect whose client is the other
    // cloud's AS.
    bool found = false;
    for (const GroundTruthInterconnect& ic : world_.interconnects) {
      if (ic.link != path.egress_interconnect &&
          ic.secondary_link != path.egress_interconnect)
        continue;
      EXPECT_EQ(ic.cloud, CloudProvider::kAmazon);
      EXPECT_TRUE(world_.is_cloud_as(ic.client, other));
      found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(CloudForwardingTest, PathsAreDeterministicPerDestination) {
  const Ipv4 target(20, 3, 7, 1);
  const ForwardPath a = forwarder_.path(vp(CloudProvider::kAmazon), target);
  const ForwardPath b = forwarder_.path(vp(CloudProvider::kAmazon), target);
  ASSERT_EQ(a.hops.size(), b.hops.size());
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    EXPECT_EQ(a.hops[i].router, b.hops[i].router);
    EXPECT_EQ(a.hops[i].incoming, b.hops[i].incoming);
  }
}

TEST_F(CloudForwardingTest, EcmpSplitsAcrossDestinationsSomewhere) {
  // For some client with multiple links, different destinations in the same
  // announced block take different egress links from one region.
  bool split_observed = false;
  for (const AutonomousSystem& as : world_.ases) {
    if (as.type == AsType::kCloud || as.announced_prefixes.empty()) continue;
    std::unordered_set<std::uint32_t> egresses;
    const Prefix& block = as.announced_prefixes.front();
    for (std::uint32_t host = 1; host < 40; host += 2) {
      const ForwardPath path = forwarder_.path(
          vp(CloudProvider::kAmazon), block.network().next(host));
      if (path.egress_interconnect.valid())
        egresses.insert(path.egress_interconnect.value);
    }
    if (egresses.size() >= 2) {
      split_observed = true;
      break;
    }
  }
  EXPECT_TRUE(split_observed);
}

TEST_F(CloudForwardingTest, RedundantSessionsAreUsedFromSomeRegion) {
  // At least one interconnect with a secondary link actually carries
  // traffic from some region (the ICG-stitching mechanism).
  const auto regions = world_.regions_of(CloudProvider::kAmazon);
  bool secondary_used = false;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (!ic.secondary_link.valid() || ic.cloud != CloudProvider::kAmazon)
      continue;
    const Ipv4 target = world_.interface(ic.client_interface).address;
    for (const RegionId region : regions) {
      const VantagePoint vantage =
          VantagePoint::cloud_vm(CloudProvider::kAmazon, region, "vm");
      const ForwardPath path = forwarder_.path(vantage, target);
      if (path.egress_interconnect == ic.secondary_link)
        secondary_used = true;
    }
    if (secondary_used) break;
  }
  EXPECT_TRUE(secondary_used);
}

TEST_F(CloudForwardingTest, ForeignCloudsCannotReachAmazonInfraSpace) {
  // Amazon-provided interconnect /30s live in WHOIS-only space: no foreign
  // cloud can route there (the reason non-shared VPIs evade detection).
  int checked = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || !ic.cloud_provided_subnet ||
        ic.private_address)
      continue;
    const Ipv4 target = world_.interface(ic.client_interface).address;
    if (!target.is_private()) {
      const ForwardPath path =
          forwarder_.path(vp(CloudProvider::kMicrosoft), target);
      EXPECT_NE(path.outcome, PathOutcome::kDelivered)
          << target.to_string();
      if (++checked > 20) break;
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace cloudmap
