// The serve daemon end to end (src/serve/): the frame codec round-trips and
// rejects every single-byte corruption (the same sweep contract as
// tests/test_serialize_corrupt.cpp and the snapshot container), the payload
// codecs are lossless for every QueryResponse shape, a loopback server
// answers each query class identically to a local engine, refuses clients
// past max_clients, and — the RCU claim — hot-swaps snapshots under
// concurrent load with zero dropped or torn queries. Suite name matches the
// CI TSan filter, so the reader/swapper races here run under the sanitizer.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fixtures.h"
#include "io/snapshot.h"
#include "query/engine.h"
#include "query/fabric_index.h"
#include "query/request.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace cloudmap {
namespace {

// Save a pipeline snapshot (format v3) to a temp file, returning the path.
std::string write_snapshot(Pipeline& pipeline, const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  save_snapshot(out, pipeline.run_snapshot());
  return path;
}

// --- frame codec -----------------------------------------------------------

TEST(Serve, FrameRoundTripsEveryType) {
  for (const serve::MsgType type :
       {serve::MsgType::kQuery, serve::MsgType::kSwap, serve::MsgType::kPing,
        serve::MsgType::kStats, serve::MsgType::kStop, serve::MsgType::kReply,
        serve::MsgType::kError}) {
    const std::string payload = "payload for type " +
                                std::to_string(static_cast<int>(type));
    std::string wire;
    serve::encode_frame(wire, type, payload);
    serve::Frame frame;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(serve::decode_frame(
                  reinterpret_cast<const unsigned char*>(wire.data()),
                  wire.size(), frame, consumed, &error),
              serve::FrameStatus::kOk)
        << error;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(Serve, FrameDecodeIsIncrementalOnPartialInput) {
  std::string wire;
  serve::encode_frame(wire, serve::MsgType::kQuery, "hello");
  serve::Frame frame;
  std::size_t consumed = 0;
  for (std::size_t cut = 0; cut < wire.size(); ++cut)
    EXPECT_EQ(serve::decode_frame(
                  reinterpret_cast<const unsigned char*>(wire.data()), cut,
                  frame, consumed, nullptr),
              serve::FrameStatus::kIncomplete)
        << "prefix of " << cut << " bytes";
  // Two frames back to back decode one at a time.
  std::string two = wire;
  serve::encode_frame(two, serve::MsgType::kPing, "");
  ASSERT_EQ(serve::decode_frame(
                reinterpret_cast<const unsigned char*>(two.data()), two.size(),
                frame, consumed, nullptr),
            serve::FrameStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame.payload, "hello");
}

TEST(Serve, FrameCrcCatchesEveryByteFlip) {
  std::string wire;
  serve::encode_frame(wire, serve::MsgType::kQuery,
                      "the quick brown fox jumps over the lazy dog");
  for (std::size_t at = 0; at < wire.size(); ++at) {
    std::string bad = wire;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    serve::Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const serve::FrameStatus status = serve::decode_frame(
        reinterpret_cast<const unsigned char*>(bad.data()), bad.size(), frame,
        consumed, &error);
    // A flip in the length prefix may also present as a short read
    // (kIncomplete); anything that decodes as a whole frame must be caught
    // by the CRC.
    EXPECT_NE(status, serve::FrameStatus::kOk) << "flip at byte " << at;
  }
}

TEST(Serve, FrameRejectsAbsurdLength) {
  // length = 256 MiB: refused before any allocation.
  const unsigned char wire[] = {0x00, 0x00, 0x00, 0x10, 0x01};
  serve::Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(serve::decode_frame(wire, sizeof(wire), frame, consumed, &error),
            serve::FrameStatus::kCorrupt);
  EXPECT_FALSE(error.empty());
}

// --- payload codecs --------------------------------------------------------

TEST(Serve, QueryRequestPayloadRoundTrips) {
  QueryRequest request;
  request.kind = QueryKind::kPeersOf;
  request.asn = 64512;
  request.metro = 7;
  request.address = 0x0A000001u;
  request.min_confidence = 0.625;
  request.want_briefs = true;
  QueryRequest reread;
  ASSERT_TRUE(serve::decode_query_request(serve::encode_query_request(request),
                                          reread));
  EXPECT_EQ(reread.kind, request.kind);
  EXPECT_EQ(reread.asn, request.asn);
  EXPECT_EQ(reread.metro, request.metro);
  EXPECT_EQ(reread.address, request.address);
  EXPECT_DOUBLE_EQ(reread.min_confidence, request.min_confidence);
  EXPECT_EQ(reread.want_briefs, request.want_briefs);

  EXPECT_FALSE(serve::decode_query_request("short", reread));
}

TEST(Serve, QueryResponsePayloadRoundTripsEveryShape) {
  // One response per kind, served by a real engine so every optional
  // section (counts, histogram, briefs, lookup fields) is exercised.
  const FabricIndex index(testfx::small_pipeline().run_snapshot());
  const QueryEngine engine(index);
  std::vector<QueryRequest> requests(kQueryKindCount);
  for (std::uint8_t k = 0; k < kQueryKindCount; ++k) {
    requests[k].kind = static_cast<QueryKind>(k);
    requests[k].want_briefs = true;
  }
  ASSERT_FALSE(index.peer_asns().empty());
  requests[static_cast<int>(QueryKind::kPeersOf)].asn =
      index.peer_asns().front();
  requests[static_cast<int>(QueryKind::kLookup)].address = index.segment(0).abi;
  requests[static_cast<int>(QueryKind::kMinConfidence)].min_confidence = 0.5;

  for (const QueryRequest& request : requests) {
    const QueryResponse response = engine.execute(request);
    QueryResponse reread;
    ASSERT_TRUE(serve::decode_query_response(
        serve::encode_query_response(response), reread))
        << static_cast<int>(request.kind);
    EXPECT_EQ(reread.status, response.status);
    EXPECT_EQ(reread.kind, response.kind);
    EXPECT_EQ(reread.error, response.error);
    EXPECT_EQ(reread.items, response.items);
    ASSERT_EQ(reread.briefs.size(), response.briefs.size());
    for (std::size_t i = 0; i < reread.briefs.size(); ++i) {
      EXPECT_EQ(reread.briefs[i].index, response.briefs[i].index);
      EXPECT_EQ(reread.briefs[i].abi, response.briefs[i].abi);
      EXPECT_EQ(reread.briefs[i].peer_asn, response.briefs[i].peer_asn);
      EXPECT_DOUBLE_EQ(reread.briefs[i].confidence,
                       response.briefs[i].confidence);
    }
    ASSERT_EQ(reread.counts.has_value(), response.counts.has_value());
    if (response.counts) {
      EXPECT_EQ(reread.counts->segments, response.counts->segments);
      EXPECT_EQ(reread.counts->by_confirmation,
                response.counts->by_confirmation);
      EXPECT_EQ(reread.counts->group_segments, response.counts->group_segments);
    }
    ASSERT_EQ(reread.histogram.has_value(), response.histogram.has_value());
    if (response.histogram) {
      EXPECT_EQ(reread.histogram->bins, response.histogram->bins);
      EXPECT_DOUBLE_EQ(reread.histogram->mean, response.histogram->mean);
    }
    EXPECT_EQ(reread.found, response.found);
    EXPECT_EQ(reread.prefix_network, response.prefix_network);
    EXPECT_EQ(reread.prefix_length, response.prefix_length);
    EXPECT_EQ(reread.is_interface, response.is_interface);
    EXPECT_EQ(reread.role_abi, response.role_abi);
    EXPECT_EQ(reread.role_cbi, response.role_cbi);
  }
}

TEST(Serve, StatsAndTextPayloadsRoundTrip) {
  serve::ServerStats stats;
  stats.served = 12345678901ull;
  stats.failed = 7;
  stats.swaps = 42;
  stats.clients = 3;
  serve::ServerStats reread;
  ASSERT_TRUE(serve::decode_stats(serve::encode_stats(stats), reread));
  EXPECT_EQ(reread.served, stats.served);
  EXPECT_EQ(reread.failed, stats.failed);
  EXPECT_EQ(reread.swaps, stats.swaps);
  EXPECT_EQ(reread.clients, stats.clients);
  EXPECT_FALSE(serve::decode_stats("xx", reread));

  std::string text;
  ASSERT_TRUE(serve::decode_text(serve::encode_text("/path/to/b.snap"), text));
  EXPECT_EQ(text, "/path/to/b.snap");
  ASSERT_TRUE(serve::decode_text(serve::encode_text(""), text));
  EXPECT_TRUE(text.empty());
  EXPECT_FALSE(serve::decode_text("\xff\xff\xff\xff", text));
}

// --- loopback server -------------------------------------------------------

TEST(Serve, LoopbackServerAnswersEveryQueryClass) {
  const std::string path =
      write_snapshot(testfx::small_pipeline(), "serve_loop.snap");
  serve::Server server({/*port=*/0, /*max_clients=*/8});
  std::string error;
  ASSERT_TRUE(server.start(path, &error)) << error;

  auto client = serve::Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  EXPECT_TRUE(client->ping(&error)) << error;

  // Remote answers must equal local ones over the same snapshot.
  const FabricIndex index(testfx::small_pipeline().run_snapshot());
  const QueryEngine local(index);
  for (std::uint8_t k = 0; k < kQueryKindCount; ++k) {
    QueryRequest request;
    request.kind = static_cast<QueryKind>(k);
    request.want_briefs = true;
    if (request.kind == QueryKind::kPeersOf)
      request.asn = index.peer_asns().front();
    if (request.kind == QueryKind::kLookup)
      request.address = index.segment(0).abi;
    if (request.kind == QueryKind::kMinConfidence)
      request.min_confidence = 0.5;
    QueryResponse remote;
    ASSERT_TRUE(client->query(request, remote, &error))
        << error << " kind " << static_cast<int>(k);
    const QueryResponse expected = local.execute(request);
    EXPECT_EQ(remote.status, QueryStatus::kOk);
    EXPECT_EQ(remote.items, expected.items) << "kind " << static_cast<int>(k);
    EXPECT_EQ(remote.briefs.size(), expected.briefs.size());
    if (expected.counts) {
      ASSERT_TRUE(remote.counts.has_value());
      EXPECT_EQ(remote.counts->segments, expected.counts->segments);
    }
  }

  serve::ServerStats stats;
  ASSERT_TRUE(client->stats(stats, &error)) << error;
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(kQueryKindCount));
  EXPECT_TRUE(client->stop_server(&error)) << error;
  server.stop();
  std::remove(path.c_str());
}

TEST(Serve, ServerRefusesClientsPastMaxAndSurfacesErrors) {
  const std::string path =
      write_snapshot(testfx::small_pipeline(), "serve_full.snap");
  serve::Server server({/*port=*/0, /*max_clients=*/1});
  std::string error;
  ASSERT_TRUE(server.start(path, &error)) << error;

  auto first = serve::Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(first.has_value()) << error;
  ASSERT_TRUE(first->ping(&error)) << error;  // fully admitted

  // The second connection is refused with a kError frame.
  auto second = serve::Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(second.has_value()) << error;  // TCP connects...
  QueryResponse response;
  QueryRequest request;
  EXPECT_FALSE(second->query(request, response, &error));  // ...then refused
  EXPECT_NE(error.find("full"), std::string::npos) << error;

  // A swap to a nonexistent path fails loudly but keeps serving.
  EXPECT_FALSE(first->swap("/nonexistent/no.snap", &error));
  EXPECT_TRUE(first->query(request, response, &error)) << error;
  EXPECT_EQ(response.status, QueryStatus::kOk);
  server.stop();
  std::remove(path.c_str());
}

TEST(Serve, ManyShortLivedConnectionsKeepStateBounded) {
  // Regression: the daemon used to push one thread object and one fd entry
  // per connection, never reclaimed, so a churny client population grew the
  // server's bookkeeping without bound. Slots are now reused: cycling far
  // more connections than max_clients must leave at most max_clients slots.
  const std::string path =
      write_snapshot(testfx::small_pipeline(), "serve_churn.snap");
  constexpr int kMaxClients = 4;
  constexpr int kConnections = 60;
  serve::Server server({/*port=*/0, /*max_clients=*/kMaxClients});
  std::string error;
  ASSERT_TRUE(server.start(path, &error)) << error;

  for (int i = 0; i < kConnections; ++i) {
    auto client = serve::Client::connect("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(client.has_value()) << error << " connection " << i;
    ASSERT_TRUE(client->ping(&error)) << error << " connection " << i;
    // client destructor closes the connection; the serving thread finishes
    // and its slot becomes reusable.
  }

  EXPECT_LE(server.client_slots(), static_cast<std::size_t>(kMaxClients))
      << "per-connection state grew with connection count";
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 0u);
  server.stop();
  std::remove(path.c_str());
}

// --- hot swap under load ---------------------------------------------------

TEST(Serve, HotSwapUnderLoadDropsNothing) {
  // Two snapshots with different content; readers hammer the server while
  // the main thread swaps back and forth. Every reply must be internally
  // consistent with exactly one of the two snapshots — never torn, never
  // failed. TSan (CI filter "Serve") checks the swap itself for races.
  Pipeline& pipeline_a = testfx::small_pipeline();
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 43;
  const World world_b = generate_world(config);
  Pipeline pipeline_b(world_b);
  pipeline_b.run_all();
  const std::string path_a = write_snapshot(pipeline_a, "serve_swap_a.snap");
  const std::string path_b = write_snapshot(pipeline_b, "serve_swap_b.snap");

  const std::size_t segments_a =
      pipeline_a.run_snapshot().segments.size();
  const std::size_t segments_b =
      pipeline_b.run_snapshot().segments.size();
  ASSERT_NE(segments_a, segments_b)
      << "worlds too similar to distinguish snapshots";

  serve::Server server({/*port=*/0, /*max_clients=*/8});
  std::string error;
  ASSERT_TRUE(server.start(path_a, &error)) << error;

  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 60;
  std::array<std::uint64_t, kReaders> failures{};
  std::vector<std::thread> readers;  // lint: thread-ok(test)
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {  // lint: thread-ok(test)
      std::string reader_error;
      auto client =
          serve::Client::connect("127.0.0.1", server.port(), &reader_error);
      if (!client) {
        failures[r] = kQueriesPerReader;
        return;
      }
      for (int i = 0; i < kQueriesPerReader; ++i) {
        QueryRequest request;
        request.kind = QueryKind::kCounts;
        QueryResponse response;
        if (!client->query(request, response, &reader_error) ||
            response.status != QueryStatus::kOk || !response.counts) {
          ++failures[r];
          continue;
        }
        // The reply must match one snapshot exactly: a torn read across a
        // swap would show a segment count from neither.
        const std::size_t got = response.counts->segments;
        if (got != segments_a && got != segments_b) ++failures[r];
      }
    });
  }

  std::string swap_error;
  for (int s = 0; s < 6; ++s) {
    ASSERT_TRUE(server.swap(s % 2 == 0 ? path_b : path_a, &swap_error))
        << swap_error;
  }
  for (std::thread& reader : readers) reader.join();

  for (int r = 0; r < kReaders; ++r)
    EXPECT_EQ(failures[r], 0u) << "reader " << r;
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.swaps, 6u);
  EXPECT_EQ(stats.served,
            static_cast<std::uint64_t>(kReaders) * kQueriesPerReader);
  server.stop();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace cloudmap
