// Control-plane registries: WHOIS, AS2ORG, PeeringDB, DNS synthesis+parsing.
#include <gtest/gtest.h>

#include "controlplane/as2org.h"
#include "controlplane/dns.h"
#include "controlplane/peeringdb.h"
#include "controlplane/whois.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

TEST(Whois, RegistersAllocatedBlocks) {
  const World& world = small_world();
  const WhoisRegistry whois = WhoisRegistry::from_world(world);
  EXPECT_GT(whois.record_count(), 0u);
  // Every announced client prefix resolves to its owner.
  for (const AutonomousSystem& as : world.ases) {
    for (const Prefix& p : as.announced_prefixes) {
      const auto owner = whois.lookup(p.network().next(1));
      ASSERT_TRUE(owner.has_value()) << p.to_string();
      EXPECT_EQ(*owner, as.asn);
    }
    for (const Prefix& p : as.whois_only_prefixes) {
      const auto owner = whois.lookup(p.network().next(1));
      ASSERT_TRUE(owner.has_value()) << p.to_string();
      EXPECT_EQ(*owner, as.asn);
    }
  }
}

TEST(Whois, NoRecordsForPrivateSpace) {
  const WhoisRegistry whois = WhoisRegistry::from_world(small_world());
  EXPECT_FALSE(whois.lookup(Ipv4(10, 0, 0, 1)).has_value());
  EXPECT_FALSE(whois.lookup(Ipv4(100, 64, 0, 1)).has_value());
}

TEST(Whois, CoverageDegradesRecordCount) {
  const World& world = small_world();
  const WhoisRegistry full = WhoisRegistry::from_world(world, 1.0);
  const WhoisRegistry half = WhoisRegistry::from_world(world, 0.5);
  EXPECT_LT(half.record_count(), full.record_count());
  EXPECT_GT(half.record_count(), 0u);
}

TEST(As2Org, AmazonAsnsShareOneOrg) {
  const World& world = small_world();
  const As2Org as2org = As2Org::from_world(world);
  const auto& amazon_ases =
      world.cloud_ases[static_cast<int>(CloudProvider::kAmazon)];
  ASSERT_GE(amazon_ases.size(), 2u);
  const OrgId org = as2org.org_of(world.ases[amazon_ases[0].value].asn);
  for (const AsId id : amazon_ases)
    EXPECT_EQ(as2org.org_of(world.ases[id.value].asn), org);
  EXPECT_TRUE(as2org.org_of(Asn{0}).is_unknown());
  EXPECT_TRUE(as2org.org_of(Asn{999999}).is_unknown());
}

TEST(PeeringDb, IxpPrefixLookup) {
  const World& world = small_world();
  const PeeringDb db = PeeringDb::from_world(world);
  for (std::uint32_t x = 0; x < world.ixps.size(); ++x) {
    const auto found =
        db.ixp_of(world.ixps[x].peering_prefix.network().next(5));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->value, x);
  }
  EXPECT_FALSE(db.ixp_of(Ipv4(20, 0, 0, 1)).has_value());
}

TEST(PeeringDb, LanMemberMapsToClient) {
  const World& world = small_world();
  const PeeringDb db = PeeringDb::from_world(world);
  std::size_t mapped = 0;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kPublicIxp) continue;
    const Ipv4 lan = world.interface(ic.client_interface).address;
    const auto member = db.lan_member(lan);
    if (!member) continue;  // coverage gaps are expected
    ++mapped;
    EXPECT_EQ(*member, world.ases[ic.client.value].asn);
  }
  EXPECT_GT(mapped, 0u);
}

TEST(PeeringDb, TenantsAreRealTenants) {
  const World& world = small_world();
  const PeeringDb db = PeeringDb::from_world(world);
  std::size_t listed = 0;
  for (std::uint32_t c = 0; c < world.colos.size(); ++c) {
    for (const Asn tenant : db.tenants(ColoId{c})) {
      ++listed;
      // The tenant has a router or interconnect at the colo in truth.
      const auto it = world.as_by_asn.find(tenant.value);
      ASSERT_NE(it, world.as_by_asn.end());
      bool present = false;
      for (const RouterId router : world.ases[it->second.value].routers)
        if (world.router(router).colo.value == c) present = true;
      for (const GroundTruthInterconnect& ic : world.interconnects) {
        if (ic.colo.value == c &&
            (ic.client == it->second ||
             world.cloud_primary(ic.cloud) == it->second))
          present = true;
      }
      EXPECT_TRUE(present);
    }
  }
  EXPECT_GT(listed, 0u);
}

TEST(PeeringDb, CloudMetrosNonEmpty) {
  const World& world = small_world();
  const PeeringDb db = PeeringDb::from_world(world);
  EXPECT_FALSE(db.cloud_metros(world, CloudProvider::kAmazon).empty());
}

TEST(Dns, NoNamesForCloudInterfaces) {
  const World& world = small_world();
  const DnsRegistry dns = DnsRegistry::from_world(world);
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    const Ipv4 cloud_side = world.interface(ic.cloud_interface).address;
    EXPECT_FALSE(dns.name_of(cloud_side).has_value());
  }
}

TEST(Dns, CoverageRoughlyMatchesOption) {
  const World& world = small_world();
  DnsOptions options;
  options.coverage = 0.42;
  const DnsRegistry dns = DnsRegistry::from_world(world, options);
  std::size_t client_ifaces = 0;
  for (const Interface& iface : world.interfaces) {
    const AutonomousSystem& owner =
        world.ases[world.router_owner(iface.router).value];
    if (owner.type == AsType::kCloud) continue;
    if (iface.address.is_private() || iface.address.is_shared()) continue;
    ++client_ifaces;
  }
  const double fraction = static_cast<double>(dns.record_count()) /
                          static_cast<double>(client_ifaces);
  EXPECT_NEAR(fraction, 0.42, 0.08);
}

TEST(Dns, ParserRecoversEmbeddedMetro) {
  const World& world = small_world();
  DnsOptions options;
  options.coverage = 1.0;
  options.wrong_location = 0.0;
  const DnsRegistry dns = DnsRegistry::from_world(world, options);
  std::size_t parsed = 0;
  std::size_t correct = 0;
  for (const Interface& iface : world.interfaces) {
    const auto name = dns.name_of(iface.address);
    if (!name) continue;
    const auto metro = parse_dns_location(*name, world);
    if (!metro) continue;
    ++parsed;
    if (*metro == world.router(iface.router).metro) ++correct;
  }
  EXPECT_GT(parsed, 100u);
  // Parser should be nearly always right when names are never stale.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(parsed), 0.95);
}

TEST(Dns, VlanAndDxDetectors) {
  EXPECT_TRUE(dns_has_vlan_tag("be-12-vl-302.atlus3.us.bb.acme.net"));
  EXPECT_FALSE(dns_has_vlan_tag("be-12.atlus3.us.bb.acme.net"));
  EXPECT_FALSE(dns_has_vlan_tag("vl-x.acme.net"));
  EXPECT_TRUE(dns_has_dx_keyword("dxvif-ffab.acme.net"));
  EXPECT_TRUE(dns_has_dx_keyword("aws-dx-7.acme.net"));
  EXPECT_TRUE(dns_has_dx_keyword("dxcon-1.acme.net"));
  EXPECT_TRUE(dns_has_dx_keyword("AWSDX-2.acme.net"));
  EXPECT_FALSE(dns_has_dx_keyword("ae-4.acme.net"));
}

TEST(Dns, DxKeywordsOnlyOnVpiInterfaces) {
  const World& world = small_world();
  DnsOptions options;
  options.coverage = 1.0;
  options.dx_keyword_on_vpi = 1.0;
  const DnsRegistry dns = DnsRegistry::from_world(world, options);
  // Collect true VPI client interfaces.
  std::unordered_set<std::uint32_t> vpi_addresses;
  for (const GroundTruthInterconnect& ic : world.interconnects)
    if (ic.kind == PeeringKind::kVpi && !ic.private_address)
      vpi_addresses.insert(
          world.interface(ic.client_interface).address.value());
  for (const Interface& iface : world.interfaces) {
    const auto name = dns.name_of(iface.address);
    if (!name || !dns_has_dx_keyword(*name)) continue;
    EXPECT_TRUE(vpi_addresses.count(iface.address.value()))
        << iface.address.to_string() << " " << *name;
  }
}

}  // namespace
}  // namespace cloudmap
