// MIDAR-style alias resolution: grouping quality against ground truth.
#include <gtest/gtest.h>

#include <unordered_map>

#include "alias/midar.h"
#include "controlplane/bgp.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

class MidarTest : public ::testing::Test {
 protected:
  MidarTest() : world_(small_world()), sim_(world_), forwarder_(world_, sim_) {
    for (const RegionId region : world_.regions_of(CloudProvider::kAmazon))
      vps_.push_back(
          VantagePoint::cloud_vm(CloudProvider::kAmazon, region, "vm"));
  }

  // All client-side interconnect interfaces (reachable alias targets).
  std::vector<Ipv4> interconnect_targets() const {
    std::vector<Ipv4> out;
    for (const GroundTruthInterconnect& ic : world_.interconnects) {
      if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
      out.push_back(world_.interface(ic.client_interface).address);
      out.push_back(world_.interface(ic.cloud_interface).address);
    }
    return out;
  }

  const World& world_;
  BgpSimulator sim_;
  Forwarder forwarder_;
  std::vector<VantagePoint> vps_;
};

TEST_F(MidarTest, SetsNeverMixRouters_FalsePositiveRateLow) {
  MidarResolver resolver(forwarder_);
  const AliasSets sets = resolver.resolve(interconnect_targets(), vps_);
  ASSERT_GT(sets.sets.size(), 0u);
  std::size_t pure = 0;
  for (const auto& set : sets.sets) {
    std::unordered_map<std::uint32_t, int> routers;
    for (const Ipv4 member : set) {
      const InterfaceId iface = world_.find_interface(member);
      ASSERT_TRUE(iface.valid());
      ++routers[world_.interface(iface).router.value];
    }
    if (routers.size() == 1) ++pure;
  }
  // Near-pure: IP-ID collisions exist in reality too, but must be rare.
  EXPECT_GE(static_cast<double>(pure) / static_cast<double>(sets.sets.size()),
            0.95);
}

TEST_F(MidarTest, RecoversMultiInterfaceRouters) {
  // Ground truth: routers with >=2 reachable interconnect interfaces.
  std::unordered_map<std::uint32_t, std::size_t> per_router;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    ++per_router[world_.interface(ic.client_interface).router.value];
  }
  std::size_t multi = 0;
  for (const auto& [router, count] : per_router)
    if (count >= 2) ++multi;
  ASSERT_GT(multi, 0u);

  MidarResolver resolver(forwarder_);
  const AliasSets sets = resolver.resolve(interconnect_targets(), vps_);
  // A healthy fraction of those routers yield an alias set.
  std::size_t recovered = 0;
  for (const auto& set : sets.sets) {
    const InterfaceId iface = world_.find_interface(set.front());
    const std::uint32_t router = world_.interface(iface).router.value;
    if (per_router.count(router) && per_router[router] >= 2) ++recovered;
  }
  EXPECT_GT(recovered, multi / 3);
}

TEST_F(MidarTest, SetOfIndexIsConsistent) {
  MidarResolver resolver(forwarder_);
  const AliasSets sets = resolver.resolve(interconnect_targets(), vps_);
  for (std::size_t s = 0; s < sets.sets.size(); ++s) {
    EXPECT_GE(sets.sets[s].size(), 2u);
    for (const Ipv4 member : sets.sets[s]) {
      const auto it = sets.set_of.find(member.value());
      ASSERT_NE(it, sets.set_of.end());
      EXPECT_EQ(it->second, s);
    }
  }
  EXPECT_EQ(sets.interfaces_in_sets(), sets.set_of.size());
}

TEST_F(MidarTest, UnreachableTargetsExcluded) {
  MidarResolver resolver(forwarder_);
  // Private-address VPI interfaces are unreachable from every region.
  std::vector<Ipv4> targets;
  for (const GroundTruthInterconnect& ic : world_.interconnects)
    if (ic.private_address)
      targets.push_back(world_.interface(ic.client_interface).address);
  ASSERT_FALSE(targets.empty());
  const AliasSets sets = resolver.resolve(targets, vps_);
  EXPECT_EQ(sets.sets.size(), 0u);
}

TEST_F(MidarTest, DeterministicUnderSeed) {
  MidarResolver a(forwarder_);
  MidarResolver b(forwarder_);
  const auto targets = interconnect_targets();
  const AliasSets sa = a.resolve(targets, vps_);
  const AliasSets sb = b.resolve(targets, vps_);
  EXPECT_EQ(sa.sets.size(), sb.sets.size());
  EXPECT_EQ(sa.interfaces_in_sets(), sb.interfaces_in_sets());
}

}  // namespace
}  // namespace cloudmap
