// Longest-prefix-match trie: exact semantics plus randomized property tests
// against a brute-force oracle.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/prefix_trie.h"
#include "util/rng.h"

namespace cloudmap {
namespace {

TEST(PrefixTrie, EmptyLookups) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(Ipv4(1, 2, 3, 4)), nullptr);
  EXPECT_EQ(trie.exact(Prefix(Ipv4(1, 2, 3, 0), 24)), nullptr);
}

TEST(PrefixTrie, MostSpecificWins) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(10, 0, 0, 0), 8), 8);
  trie.insert(Prefix(Ipv4(10, 1, 0, 0), 16), 16);
  trie.insert(Prefix(Ipv4(10, 1, 2, 0), 24), 24);
  ASSERT_NE(trie.lookup(Ipv4(10, 1, 2, 3)), nullptr);
  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 2, 3)), 24);
  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 3, 1)), 16);
  EXPECT_EQ(*trie.lookup(Ipv4(10, 9, 9, 9)), 8);
  EXPECT_EQ(trie.lookup(Ipv4(11, 0, 0, 0)), nullptr);
}

TEST(PrefixTrie, DefaultRouteAtLengthZero) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(0, 0, 0, 0), 0), 1);
  ASSERT_NE(trie.lookup(Ipv4(200, 200, 200, 200)), nullptr);
  EXPECT_EQ(*trie.lookup(Ipv4(200, 200, 200, 200)), 1);
}

TEST(PrefixTrie, InsertOverwritesAndEraseRemoves) {
  PrefixTrie<int> trie;
  const Prefix p(Ipv4(10, 0, 0, 0), 8);
  trie.insert(p, 1);
  trie.insert(p, 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.exact(p), 2);
  EXPECT_TRUE(trie.erase(p));
  EXPECT_FALSE(trie.erase(p));
  EXPECT_EQ(trie.lookup(Ipv4(10, 0, 0, 1)), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, AtOrDefaultCreatesOnce) {
  PrefixTrie<std::vector<int>> trie;
  const Prefix p(Ipv4(10, 0, 0, 0), 24);
  trie.at_or_default(p).push_back(1);
  trie.at_or_default(p).push_back(2);
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.exact(p), nullptr);
  EXPECT_EQ(trie.exact(p)->size(), 2u);
}

TEST(PrefixTrie, Slash32Entries) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(10, 0, 0, 5), 32), 5);
  trie.insert(Prefix(Ipv4(10, 0, 0, 0), 24), 24);
  EXPECT_EQ(*trie.lookup(Ipv4(10, 0, 0, 5)), 5);
  EXPECT_EQ(*trie.lookup(Ipv4(10, 0, 0, 6)), 24);
}

TEST(PrefixTrie, LookupEntryReportsMatchedPrefix) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(10, 1, 0, 0), 16), 7);
  const auto entry = trie.lookup_entry(Ipv4(10, 1, 2, 3));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first.to_string(), "10.1.0.0/16");
  EXPECT_EQ(entry->second, 7);
}

TEST(PrefixTrie, ForEachVisitsAllInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(20, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4(10, 0, 0, 0), 8), 2);
  trie.insert(Prefix(Ipv4(10, 5, 0, 0), 16), 3);
  std::vector<std::string> seen;
  trie.for_each([&](const Prefix& p, int) { seen.push_back(p.to_string()); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "10.0.0.0/8");
  EXPECT_EQ(seen[1], "10.5.0.0/16");
  EXPECT_EQ(seen[2], "20.0.0.0/8");
}

// Property test: random prefix sets against a brute-force oracle.
class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, MatchesBruteForceOracle) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 200; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.range(4, 30));
    const Prefix p(Ipv4(static_cast<std::uint32_t>(rng.next())), length);
    // Keep the oracle simple: skip duplicate prefixes.
    bool duplicate = false;
    for (const auto& [existing, value] : entries)
      if (existing == p) duplicate = true;
    if (duplicate) continue;
    entries.emplace_back(p, i);
    trie.insert(p, i);
  }
  ASSERT_EQ(trie.size(), entries.size());

  for (int probe = 0; probe < 2000; ++probe) {
    // Half the probes land inside a random entry, half are uniform.
    Ipv4 address(static_cast<std::uint32_t>(rng.next()));
    if (!entries.empty() && probe % 2 == 0) {
      const auto& [p, value] = entries[rng.bounded(entries.size())];
      address = Ipv4(p.network().value() +
                     static_cast<std::uint32_t>(rng.bounded(p.size())));
    }
    // Oracle: longest containing prefix.
    const std::pair<Prefix, int>* best = nullptr;
    for (const auto& entry : entries) {
      if (!entry.first.contains(address)) continue;
      if (best == nullptr || entry.first.length() > best->first.length())
        best = &entry;
    }
    const int* found = trie.lookup(address);
    if (best == nullptr) {
      EXPECT_EQ(found, nullptr) << address.to_string();
    } else {
      ASSERT_NE(found, nullptr) << address.to_string();
      EXPECT_EQ(*found, best->second) << address.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 99));

}  // namespace
}  // namespace cloudmap
