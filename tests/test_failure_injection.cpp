// Failure injection: the pipeline must degrade gracefully — not crash, not
// fabricate — when its public data sources are crippled or the network is
// hostile (silent routers, no DNS, empty PeeringDB, heavy packet loss).
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "topology/generator.h"

namespace cloudmap {
namespace {

World tiny_world(std::uint64_t seed,
                 void (*mutate)(GeneratorConfig&) = nullptr) {
  GeneratorConfig config = GeneratorConfig::small();
  // Smaller still: failure runs should stay fast.
  config.metro_count = 8;
  config.amazon_regions = 3;
  config.microsoft_regions = 2;
  config.google_regions = 1;
  config.ibm_regions = 1;
  config.oracle_regions = 1;
  config.tier1_count = 2;
  config.tier2_count = 6;
  config.access_count = 8;
  config.enterprise_count = 12;
  config.content_count = 5;
  config.cdn_count = 2;
  config.seed = seed;
  if (mutate != nullptr) mutate(config);
  return generate_world(config);
}

TEST(FailureInjection, NoDnsAtAll) {
  const World world = tiny_world(3);
  PipelineOptions options;
  options.dns.coverage = 0.0;
  Pipeline pipeline(world, options);
  pipeline.run_all();
  const AnchorSet& anchors = pipeline.anchors();
  EXPECT_EQ(anchors.dns, 0u);
  // Pinning still proceeds from the other three anchor sources.
  EXPECT_GT(anchors.ixp + anchors.metro_footprint + anchors.native, 0u);
  EXPECT_GT(pipeline.pinning().pins.size(), 0u);
}

TEST(FailureInjection, EmptyPeeringDb) {
  const World world = tiny_world(4);
  PipelineOptions options;
  options.peeringdb.tenant_coverage = 0.0;
  options.peeringdb.participant_coverage = 0.0;
  Pipeline pipeline(world, options);
  pipeline.run_all();
  // No footprint anchors, no IXP member attribution — but the campaign and
  // the other anchor sources still function.
  EXPECT_EQ(pipeline.anchors().metro_footprint, 0u);
  EXPECT_GT(pipeline.campaign().fabric().segments().size(), 0u);
  EXPECT_GT(pipeline.pinning().pins.size(), 0u);
}

TEST(FailureInjection, HostileDns) {
  // Every DNS record points at the wrong metro: the RTT feasibility check
  // plus anchor consistency filtering must keep pinning precision.
  const World world = tiny_world(5, [](GeneratorConfig& config) {
    config.dns_wrong_location = 1.0;
  });
  Pipeline pipeline(world);
  pipeline.run_all();
  const GroundTruthAccuracy accuracy =
      score_against_truth(world, pipeline.pinning());
  if (accuracy.pinned > 20) {
    EXPECT_GT(accuracy.accuracy, 0.6)
        << "hostile DNS should be largely filtered, not swallowed";
  }
}

TEST(FailureInjection, MostlySilentClients) {
  const World world = tiny_world(6, [](GeneratorConfig& config) {
    config.router_silent = 0.5;
  });
  Pipeline pipeline(world);
  pipeline.run_all();
  // Far fewer segments, but whatever is inferred remains precise at the
  // router level.
  const InferenceScore score = pipeline.score();
  EXPECT_GT(pipeline.campaign().fabric().segments().size(), 0u);
  if (score.inferred_cbis > 20) {
    EXPECT_GT(score.router_precision(), 0.5);
  }
}

TEST(FailureInjection, EverythingRepliesWithDefaults) {
  const World world = tiny_world(7, [](GeneratorConfig& config) {
    config.router_fixed_reply = 1.0;
    config.tier2_fixed_reply = 1.0;
  });
  Pipeline pipeline(world);
  EXPECT_NO_THROW(pipeline.run_all());
  // The fabric exists; exact-interface matching collapses (expected), the
  // router-level view survives better.
  const InferenceScore score = pipeline.score();
  EXPECT_GE(score.router_recall(), score.recall());
}

TEST(FailureInjection, NoVpisPlanted) {
  const World world = tiny_world(8, [](GeneratorConfig& config) {
    config.enterprise_vpi = 0.0;
    config.access_vpi = 0.0;
    config.content_vpi = 0.0;
    config.cdn_vpi = 0.0;
    config.tier2_vpi = 0.0;
    config.tier1_vpi = 0.0;
  });
  Pipeline pipeline(world);
  pipeline.run_all();
  // The overlap method can still fire on interior-interface artifacts, but
  // only marginally; with no VPI fabric there is nothing real to find.
  EXPECT_LE(pipeline.vpis().vpi_cbis.size(),
            pipeline.campaign().fabric().unique_cbis().size() / 10);
}

TEST(FailureInjection, AllVpisPrivate) {
  const World world = tiny_world(9, [](GeneratorConfig& config) {
    config.vpi_private_address = 1.0;
  });
  Pipeline pipeline(world);
  pipeline.run_all();
  // Private VPIs are invisible in principle: none of their client
  // interfaces may surface anywhere in the fabric.
  const auto cbis = pipeline.campaign().fabric().unique_cbis();
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kVpi) continue;
    EXPECT_TRUE(ic.private_address);
    EXPECT_EQ(cbis.count(
                  world.interface(ic.client_interface).address.value()),
              0u);
  }
}

TEST(FailureInjection, BarrenBgpCollectors) {
  // A snapshot built from zero collector feeds: annotation falls back to
  // WHOIS everywhere; the border walk still works because ORG identity
  // comes through the registry.
  const World world = tiny_world(10);
  const BgpSimulator sim(world);
  const BgpSnapshot empty = build_snapshot(world, sim, {});
  EXPECT_EQ(empty.origin_of.size(), 0u);
  EXPECT_TRUE(empty.as_links.empty());

  const WhoisRegistry whois = WhoisRegistry::from_world(world);
  const As2Org as2org = As2Org::from_world(world);
  const PeeringDb peeringdb = PeeringDb::from_world(world);
  const Annotator annotator(&empty, &whois, &as2org, &peeringdb);
  Forwarder forwarder(world, sim);
  Campaign campaign(world, forwarder, CloudProvider::kAmazon);
  const RoundStats stats = campaign.run_round1(annotator);
  EXPECT_GT(stats.walk.extracted, 0u);
}

TEST(FailureInjection, ZeroExpansionStride) {
  // Misconfigured stride values are clamped rather than dividing by zero.
  const World world = tiny_world(11);
  PipelineOptions options;
  options.campaign.expansion_stride = 0;
  Pipeline pipeline(world, options);
  EXPECT_NO_THROW(pipeline.round2());
}

}  // namespace
}  // namespace cloudmap
