// Grouping/classifier unit tests on synthetic fabrics with controlled
// attributes, independent of the full pipeline.
#include <gtest/gtest.h>

#include "analysis/grouping.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class GroupingUnit : public ::testing::Test {
 protected:
  GroupingUnit()
      : pipeline_(small_pipeline()), annotator_(pipeline_.annotator()) {
    annotator_.set_snapshot(&pipeline_.snapshot_round2());
    const World& world = pipeline_.world();
    // A client AS whose link with Amazon is BGP-visible (tier1) and one
    // whose link is not (enterprise with only VPI/xconnect peerings).
    const Asn amazon =
        world.ases[world.cloud_primary(CloudProvider::kAmazon).value].asn;
    for (const AutonomousSystem& as : world.ases) {
      if (as.announced_prefixes.empty()) continue;
      const bool visible =
          pipeline_.snapshot_round2().link_visible(amazon, as.asn);
      if (visible && !visible_client_.is_unspecified()) continue;
      if (visible) {
        visible_client_ = as.announced_prefixes.front().network().next(40);
        visible_asn_ = as.asn;
      } else if (invisible_client_.is_unspecified() &&
                 as.type == AsType::kEnterprise) {
        invisible_client_ = as.announced_prefixes.front().network().next(40);
        invisible_asn_ = as.asn;
      }
    }
    // An IXP LAN member address.
    for (const GroundTruthInterconnect& ic : world.interconnects) {
      if (ic.kind == PeeringKind::kPublicIxp &&
          ic.cloud == CloudProvider::kAmazon) {
        const Ipv4 lan = world.interface(ic.client_interface).address;
        if (annotator_.annotate(lan).ixp &&
            !annotator_.annotate(lan).asn.is_unknown()) {
          ixp_cbi_ = lan;
          break;
        }
      }
    }
    abi_ = world.ases[world.cloud_primary(CloudProvider::kAmazon).value]
               .announced_prefixes.front().network().next(200);
  }

  static InferredSegment segment(Ipv4 abi, Ipv4 cbi) {
    InferredSegment out;
    out.abi = abi;
    out.cbi = cbi;
    return out;
  }

  PeeringClassifier classifier(
      const std::unordered_set<std::uint32_t>* vpis = nullptr) {
    return PeeringClassifier(&annotator_, &pipeline_.snapshot_round2(),
                             pipeline_.subject_asns(), vpis);
  }

  Pipeline& pipeline_;
  Annotator annotator_;
  Ipv4 visible_client_, invisible_client_, ixp_cbi_, abi_;
  Asn visible_asn_, invisible_asn_;
};

TEST_F(GroupingUnit, PublicVsPrivateAxis) {
  ASSERT_FALSE(ixp_cbi_.is_unspecified());
  ASSERT_FALSE(invisible_client_.is_unspecified());
  PeeringClassifier c = classifier();
  const auto public_group = c.classify(segment(abi_, ixp_cbi_));
  ASSERT_TRUE(public_group.has_value());
  EXPECT_TRUE(*public_group == PeeringGroup::kPbNb ||
              *public_group == PeeringGroup::kPbB);
  const auto private_group = c.classify(segment(abi_, invisible_client_));
  ASSERT_TRUE(private_group.has_value());
  EXPECT_TRUE(*private_group == PeeringGroup::kPrNbNv ||
              *private_group == PeeringGroup::kPrBNv);
}

TEST_F(GroupingUnit, BgpAxisFollowsSnapshotLinks) {
  ASSERT_FALSE(visible_client_.is_unspecified());
  ASSERT_FALSE(invisible_client_.is_unspecified());
  PeeringClassifier c = classifier();
  EXPECT_TRUE(c.link_in_bgp(visible_asn_));
  EXPECT_FALSE(c.link_in_bgp(invisible_asn_));
  const auto visible_group = c.classify(segment(abi_, visible_client_));
  ASSERT_TRUE(visible_group.has_value());
  EXPECT_EQ(*visible_group, PeeringGroup::kPrBNv);
  const auto invisible_group = c.classify(segment(abi_, invisible_client_));
  ASSERT_TRUE(invisible_group.has_value());
  EXPECT_EQ(*invisible_group, PeeringGroup::kPrNbNv);
}

TEST_F(GroupingUnit, VirtualAxisFollowsVpiSet) {
  ASSERT_FALSE(invisible_client_.is_unspecified());
  std::unordered_set<std::uint32_t> vpis{invisible_client_.value()};
  PeeringClassifier c = classifier(&vpis);
  const auto group = c.classify(segment(abi_, invisible_client_));
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(*group, PeeringGroup::kPrNbV);
  // A public CBI never classifies as virtual even if (incorrectly) listed.
  if (!ixp_cbi_.is_unspecified()) {
    vpis.insert(ixp_cbi_.value());
    PeeringClassifier c2 = classifier(&vpis);
    const auto public_group = c2.classify(segment(abi_, ixp_cbi_));
    ASSERT_TRUE(public_group.has_value());
    EXPECT_TRUE(*public_group == PeeringGroup::kPbNb ||
                *public_group == PeeringGroup::kPbB);
  }
}

TEST_F(GroupingUnit, OwnerHintUsedForCloudAddressedCbis) {
  PeeringClassifier c = classifier();
  InferredSegment s = segment(abi_, abi_.next(1));  // Amazon-addressed CBI
  EXPECT_TRUE(c.segment_owner(s).is_unknown() ||
              c.segment_owner(s) == s.owner_hint);
  s.owner_hint = invisible_asn_;
  EXPECT_EQ(c.segment_owner(s), invisible_asn_);
  const auto group = c.classify(s);
  ASSERT_TRUE(group.has_value());
}

TEST_F(GroupingUnit, UnknownOwnerClassifiesAsNothing) {
  PeeringClassifier c = classifier();
  // 99/8 is unallocated: no annotation, no hint.
  const auto group = c.classify(segment(abi_, Ipv4(99, 1, 2, 3)));
  EXPECT_FALSE(group.has_value());
}

TEST_F(GroupingUnit, BreakdownCountsDistinctEntities) {
  Fabric fabric;
  CandidateSegment c1;
  c1.abi = abi_;
  c1.cbi = invisible_client_;
  c1.destination = Ipv4(20, 0, 0, 1);
  fabric.add_segment(c1, 1);
  CandidateSegment c2;
  c2.abi = abi_.next(1);
  c2.cbi = invisible_client_;  // same CBI behind another ABI
  c2.destination = Ipv4(20, 0, 0, 1);
  fabric.add_segment(c2, 1);
  PeeringClassifier cls = classifier();
  const GroupBreakdown b = breakdown(fabric, cls);
  EXPECT_EQ(b.total_cbis, 1u);
  EXPECT_EQ(b.total_abis, 2u);
  EXPECT_EQ(b.total_ases, 1u);
}

TEST_F(GroupingUnit, HybridComboIsExactGroupSet) {
  Fabric fabric;
  CandidateSegment c1;
  c1.abi = abi_;
  c1.cbi = invisible_client_;  // Pr-nB-nV
  c1.destination = Ipv4(20, 0, 0, 1);
  fabric.add_segment(c1, 1);
  PeeringClassifier cls = classifier();
  const auto rows = hybrid_breakdown(fabric, cls);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].combo.size(), 1u);
  EXPECT_EQ(rows[0].combo[0], PeeringGroup::kPrNbNv);
  EXPECT_EQ(rows[0].as_count, 1u);
}

}  // namespace
}  // namespace cloudmap
