// Serialization edge cases beyond the happy-path round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "io/serialize.h"

namespace cloudmap {
namespace {

TEST(IoEdge, EmptyFabricRoundTrips) {
  Fabric empty;
  std::stringstream buffer;
  write_fabric(buffer, empty);
  const Fabric parsed = read_fabric(buffer);
  EXPECT_TRUE(parsed.segments().empty());
}

TEST(IoEdge, FabricIgnoresForeignLines) {
  std::stringstream buffer;
  buffer << "# comment\n"
         << "R 1 0 1.2.3.4 gap *\n"
         << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 3|4 20.0.0.0\n"
         << "garbage\n";
  const Fabric parsed = read_fabric(buffer);
  ASSERT_EQ(parsed.segments().size(), 1u);
  EXPECT_EQ(parsed.segments()[0].abi.to_string(), "10.0.0.1");
  EXPECT_EQ(parsed.segments()[0].cbi.to_string(), "20.0.0.2");
  EXPECT_EQ(parsed.segments()[0].regions.size(), 2u);
  EXPECT_EQ(parsed.segments()[0].dest_slash24s.size(), 1u);
}

TEST(IoEdge, FabricWithNoRegionsOrDests) {
  std::stringstream buffer;
  buffer << "S 10.0.0.1 20.0.0.2 10.0.0.0 20.0.0.3 2 3 1 64512 - -\n";
  const Fabric parsed = read_fabric(buffer);
  ASSERT_EQ(parsed.segments().size(), 1u);
  const InferredSegment& segment = parsed.segments()[0];
  EXPECT_TRUE(segment.regions.empty());
  EXPECT_TRUE(segment.dest_slash24s.empty());
  EXPECT_EQ(segment.first_round, 2);
  EXPECT_EQ(segment.confirmation, Confirmation::kReachability);
  EXPECT_TRUE(segment.shifted);
  EXPECT_EQ(segment.owner_hint.value, 64512u);
  EXPECT_EQ(segment.prior_abi.to_string(), "10.0.0.0");
  EXPECT_EQ(segment.post_cbi.to_string(), "20.0.0.3");
}

TEST(IoEdge, RecordWithNoHops) {
  TracerouteRecord record;
  record.vantage.provider = CloudProvider::kGoogle;
  record.vantage.region = RegionId{1};
  record.destination = Ipv4(20, 1, 1, 1);
  record.status = TracerouteStatus::kUnreachable;
  std::ostringstream out;
  write_record(out, record);
  const auto parsed = read_record(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hops.empty());
  EXPECT_EQ(parsed->status, TracerouteStatus::kUnreachable);
}

TEST(IoEdge, AllSilentHops) {
  TracerouteRecord record;
  record.vantage.provider = CloudProvider::kAmazon;
  record.vantage.region = RegionId{0};
  record.destination = Ipv4(20, 1, 1, 1);
  record.status = TracerouteStatus::kGapLimit;
  for (int i = 0; i < 5; ++i) record.hops.push_back(TracerouteHop{});
  std::ostringstream out;
  write_record(out, record);
  const auto parsed = read_record(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->hops.size(), 5u);
  for (const TracerouteHop& hop : parsed->hops)
    EXPECT_FALSE(hop.responded);
}

TEST(IoEdge, DuplicateSegmentsMergeOnLoad) {
  std::stringstream buffer;
  buffer << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 1 20.0.0.0\n"
         << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 2 20.1.0.0\n";
  const Fabric parsed = read_fabric(buffer);
  // Loading rebuilds through add_segment, which dedupes by (abi, cbi); the
  // later line's scalar fields win, set fields are replaced.
  EXPECT_EQ(parsed.segments().size(), 1u);
}

TEST(IoEdge, ReadRecordsSkipsBlankLines) {
  std::stringstream buffer;
  buffer << "\n\nR 1 0 1.2.3.4 completed 10.0.0.1:0.5\n\n";
  const auto records = read_records(buffer);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].hops.size(), 1u);
}

}  // namespace
}  // namespace cloudmap
