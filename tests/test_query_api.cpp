// The unified request/response query API (query/request.h): execute()
// answers every QueryKind identically to the deprecated per-query shims,
// bumps exactly one metrics counter per call (the same counters the shims
// bump), honors min-confidence filtering and brief expansion, and turns
// malformed requests into kBadRequest instead of throwing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fixtures.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "query/fabric_index.h"
#include "query/request.h"

namespace cloudmap {
namespace {

const FabricIndex& shared_index() {
  static const FabricIndex* index =
      new FabricIndex(testfx::small_pipeline().run_snapshot());
  return *index;
}

std::uint64_t counter_value(const MetricsRegistry& registry,
                            const std::string& name) {
  for (const auto& [key, value] : registry.snapshot().counters)
    if (key == name) return value;
  return 0;
}

TEST(QueryApi, ExecuteMatchesEveryDeprecatedShim) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);

  QueryRequest request;
  request.kind = QueryKind::kPeersOf;
  ASSERT_FALSE(index.peer_asns().empty());
  request.asn = index.peer_asns().front();
  EXPECT_EQ(engine.execute(request).items,
            engine.peers_of(Asn{request.asn}));

  request = {};
  request.kind = QueryKind::kInterfacesIn;
  ASSERT_FALSE(index.pinned_metros().empty());
  request.metro = index.pinned_metros().front();
  EXPECT_EQ(engine.execute(request).items,
            engine.interfaces_in(request.metro));

  request = {};
  request.kind = QueryKind::kVpiCandidates;
  EXPECT_EQ(engine.execute(request).items, engine.vpi_candidates());

  request = {};
  request.kind = QueryKind::kMinConfidence;
  request.min_confidence = 0.5;
  EXPECT_EQ(engine.execute(request).items,
            engine.segments_min_confidence(0.5));

  request = {};
  request.kind = QueryKind::kCounts;
  const QueryResponse counts_response = engine.execute(request);
  ASSERT_TRUE(counts_response.counts.has_value());
  const FabricCounts& via_shim = engine.counts();
  EXPECT_EQ(counts_response.counts->segments, via_shim.segments);
  EXPECT_EQ(counts_response.counts->peer_ases, via_shim.peer_ases);
  EXPECT_EQ(counts_response.counts->peer_orgs, via_shim.peer_orgs);

  request = {};
  request.kind = QueryKind::kConfidenceHistogram;
  const QueryResponse histogram_response = engine.execute(request);
  ASSERT_TRUE(histogram_response.histogram.has_value());
  EXPECT_EQ(histogram_response.histogram->bins,
            engine.confidence_histogram().bins);

  request = {};
  request.kind = QueryKind::kPeerList;
  EXPECT_EQ(engine.execute(request).items, index.peer_asns());

  // Lookup: the response mirrors the pointer-based shim hit field by field.
  request = {};
  request.kind = QueryKind::kLookup;
  const SegmentFacts facts = index.segment(0);
  request.address = facts.abi;
  const QueryResponse hit_response = engine.execute(request);
  const auto hit = engine.lookup(Ipv4(facts.abi));
  ASSERT_TRUE(hit_response.found);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit_response.prefix_network, hit->prefix.network().value());
  EXPECT_EQ(hit_response.prefix_length, hit->prefix.length());
  EXPECT_EQ(hit_response.is_interface, hit->is_interface);
  EXPECT_EQ(hit_response.role_abi, hit->abi);
  EXPECT_EQ(hit_response.role_cbi, hit->cbi);
  ASSERT_NE(hit->segments, nullptr);
  EXPECT_EQ(hit_response.items, *hit->segments);

  // A missing address is kOk with found=false, not an error.
  request.address = Ipv4(255, 255, 255, 254).value();
  const QueryResponse miss = engine.execute(request);
  EXPECT_EQ(miss.status, QueryStatus::kOk);
  EXPECT_FALSE(miss.found);
  EXPECT_TRUE(miss.items.empty());
}

TEST(QueryApi, EveryCallBumpsItsOwnCounter) {
  MetricsRegistry registry(true);
  const QueryEngine engine(shared_index(), &registry);

  const struct {
    QueryKind kind;
    const char* name;
  } cases[] = {
      {QueryKind::kCounts, "query.counts"},
      {QueryKind::kPeersOf, "query.peers_of"},
      {QueryKind::kPeerList, "query.peer_list"},
      {QueryKind::kInterfacesIn, "query.interfaces_in"},
      {QueryKind::kVpiCandidates, "query.vpi_candidates"},
      {QueryKind::kLookup, "query.lookups"},
      {QueryKind::kMinConfidence, "query.min_confidence"},
      {QueryKind::kConfidenceHistogram, "query.confidence_histogram"},
  };
  // All eight counters exist before any query runs (artifact completeness).
  for (const auto& [kind, name] : cases)
    EXPECT_EQ(counter_value(registry, name), 0u) << name;
  for (const auto& [kind, name] : cases) {
    QueryRequest request;
    request.kind = kind;
    EXPECT_EQ(engine.execute(request).status, QueryStatus::kOk) << name;
    EXPECT_EQ(counter_value(registry, name), 1u) << name;
  }
  // Exactly one counter moved per call: eight calls, total eight.
  std::uint64_t total = 0;
  for (const auto& [kind, name] : cases)
    total += counter_value(registry, name);
  EXPECT_EQ(total, 8u);

  // The deprecated shims bump the same counters as their execute() form.
  engine.vpi_candidates();
  EXPECT_EQ(counter_value(registry, "query.vpi_candidates"), 2u);
  engine.lookup(Ipv4(10, 0, 0, 1));
  EXPECT_EQ(counter_value(registry, "query.lookups"), 2u);
  engine.confidence_histogram();
  EXPECT_EQ(counter_value(registry, "query.confidence_histogram"), 2u);
}

TEST(QueryApi, MinConfidenceFiltersPeersOfAndVpiCandidates) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);

  QueryRequest request;
  request.kind = QueryKind::kVpiCandidates;
  request.min_confidence = 0.6;
  const QueryResponse filtered = engine.execute(request);
  std::vector<std::uint32_t> expected;
  for (const std::uint32_t i : engine.vpi_candidates())
    if (index.segment(i).confidence >= 0.6) expected.push_back(i);
  EXPECT_EQ(filtered.items, expected);

  // The default threshold (-1) filters nothing.
  request.min_confidence = -1.0;
  EXPECT_EQ(engine.execute(request).items, engine.vpi_candidates());

  ASSERT_FALSE(index.peer_asns().empty());
  for (const std::uint32_t asn : index.peer_asns()) {
    request = {};
    request.kind = QueryKind::kPeersOf;
    request.asn = asn;
    request.min_confidence = 0.6;
    expected.clear();
    for (const std::uint32_t i : engine.peers_of(Asn{asn}))
      if (index.segment(i).confidence >= 0.6) expected.push_back(i);
    EXPECT_EQ(engine.execute(request).items, expected) << "AS" << asn;
  }
}

TEST(QueryApi, WantBriefsExpandsSegmentIndexResults) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);

  QueryRequest request;
  request.kind = QueryKind::kVpiCandidates;
  request.want_briefs = true;
  const QueryResponse response = engine.execute(request);
  ASSERT_EQ(response.briefs.size(), response.items.size());
  for (std::size_t i = 0; i < response.items.size(); ++i) {
    const SegmentBrief& brief = response.briefs[i];
    const SegmentFacts facts = index.segment(response.items[i]);
    EXPECT_EQ(brief.index, response.items[i]);
    EXPECT_EQ(brief.abi, facts.abi);
    EXPECT_EQ(brief.cbi, facts.cbi);
    EXPECT_EQ(brief.peer_asn, facts.peer_asn);
    EXPECT_EQ(brief.confirmation, facts.confirmation);
    EXPECT_EQ(brief.ixp, facts.ixp);
    EXPECT_EQ(brief.vpi, facts.vpi);
    EXPECT_DOUBLE_EQ(brief.confidence, facts.confidence);
  }

  // Briefs are opt-in; address/ASN lists never carry them.
  request.want_briefs = false;
  EXPECT_TRUE(engine.execute(request).briefs.empty());
  request = {};
  request.kind = QueryKind::kPeerList;
  request.want_briefs = true;
  EXPECT_TRUE(engine.execute(request).briefs.empty());
}

TEST(QueryApi, MalformedRequestsComeBackAsBadRequest) {
  const QueryEngine engine(shared_index());
  QueryRequest request;
  request.kind = static_cast<QueryKind>(200);
  const QueryResponse response = engine.execute(request);
  EXPECT_EQ(response.status, QueryStatus::kBadRequest);
  EXPECT_FALSE(response.error.empty());
  EXPECT_TRUE(response.items.empty());

  request.kind = static_cast<QueryKind>(kQueryKindCount);
  EXPECT_EQ(engine.execute(request).status, QueryStatus::kBadRequest);
}

}  // namespace
}  // namespace cloudmap
