// The study-report renderer: content completeness and internal consistency.
#include <gtest/gtest.h>

#include "analysis/report.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

TEST(Report, ContainsEverySection) {
  const std::string report = render_study_report(small_pipeline());
  for (const char* needle :
       {"cloud peering fabric study", "campaign:", "fabric:",
        "peering groups", "hidden", "hybrid combinations",
        "VPI lower bound", "pinning:", "connectivity graph",
        "remote peerings", "ground truth"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, GroundTruthSectionIsOptional) {
  ReportOptions options;
  options.include_ground_truth = false;
  const std::string report =
      render_study_report(small_pipeline(), options);
  EXPECT_EQ(report.find("ground truth"), std::string::npos);
}

TEST(Report, NumbersMatchPipelineState) {
  Pipeline& pipeline = small_pipeline();
  const std::string report = render_study_report(pipeline);
  // The fabric segment count appears verbatim.
  const std::string segments =
      std::to_string(pipeline.campaign().fabric().segments().size());
  EXPECT_NE(report.find(segments + " interconnection"), std::string::npos);
  const std::string peers = std::to_string(pipeline.peer_asns().size());
  EXPECT_NE(report.find(peers + " peer ASes"), std::string::npos);
}

TEST(Report, HybridRowLimitRespected) {
  ReportOptions options;
  options.hybrid_rows = 1;
  const std::string report =
      render_study_report(small_pipeline(), options);
  // Exactly one "— N ASes" row in the hybrid section.
  std::size_t rows = 0;
  std::size_t cursor = 0;
  while ((cursor = report.find(" ASes\n", cursor)) != std::string::npos) {
    ++rows;
    ++cursor;
  }
  EXPECT_GE(rows, 1u);
}

}  // namespace
}  // namespace cloudmap
