// Paper-shape integration suite: the full pipeline at bench scale, checked
// against the paper's qualitative structure and against ground truth. These are
// the slowest tests in the suite and double as a regression net for the
// numbers EXPERIMENTS.md reports.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/graph.h"
#include "analysis/grouping.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::paper_pipeline;

TEST(PaperShape, CampaignLeavesTheCloudLikeThePaper) {
  Pipeline& p = paper_pipeline();
  // The paper reports ~77%; the synthetic world is fully allocated so runs
  // somewhat higher — but it must be in the same regime, not near 100%.
  EXPECT_GT(p.round1().left_cloud_fraction(), 0.6);
  EXPECT_GT(p.round1().traceroutes, 100000u);
}

TEST(PaperShape, ExpansionGrowsCbisNotAbis) {
  Pipeline& p = paper_pipeline();
  std::size_t round1_cbis = 0;
  std::size_t round2_cbis = 0;
  for (const InferredSegment& segment : p.campaign().fabric().segments()) {
    if (segment.first_round == 1) ++round1_cbis;
    else ++round2_cbis;
  }
  // Expansion adds a material share of segments (paper: +14% CBIs).
  EXPECT_GT(round2_cbis, round1_cbis / 20);
}

TEST(PaperShape, InferenceScoreFloors) {
  Pipeline& p = paper_pipeline();
  const InferenceScore score = p.score();
  EXPECT_GT(score.router_recall(), 0.8);
  EXPECT_GT(score.recall(), 0.5);
  EXPECT_GT(score.router_precision(), 0.7);
  EXPECT_GT(score.precision(), 0.5);
}

TEST(PaperShape, GroupSharesMatchPaperOrdering) {
  Pipeline& p = paper_pipeline();
  const PeeringClassifier classifier = p.classifier();
  const GroupBreakdown b = breakdown(p.campaign().fabric(), classifier);
  const auto ases = [&](PeeringGroup g) {
    return b.rows[static_cast<int>(g)].ases.size();
  };
  // Pb-nB is the largest AS group; Pr-nB-nV second; the BGP-visible groups
  // are small — the Table 5 ordering.
  EXPECT_GT(ases(PeeringGroup::kPbNb), ases(PeeringGroup::kPrNbNv) / 2);
  EXPECT_GT(ases(PeeringGroup::kPrNbNv), ases(PeeringGroup::kPrNbV));
  EXPECT_GT(ases(PeeringGroup::kPbNb), ases(PeeringGroup::kPbB) * 5);
  EXPECT_GT(ases(PeeringGroup::kPrNbNv), ases(PeeringGroup::kPrBNv) * 3);
  // Pr-B has few ASes but many CBIs per AS (large transit networks).
  const double pr_b_cbis_per_as =
      b.pr_b.ases.empty()
          ? 0.0
          : static_cast<double>(b.pr_b.cbis.size()) /
                static_cast<double>(b.pr_b.ases.size());
  const double pb_cbis_per_as =
      b.pb.ases.empty() ? 0.0
                        : static_cast<double>(b.pb.cbis.size()) /
                              static_cast<double>(b.pb.ases.size());
  EXPECT_GT(pr_b_cbis_per_as, pb_cbis_per_as * 3);
}

TEST(PaperShape, VpiTableOrdering) {
  Pipeline& p = paper_pipeline();
  const auto& per_cloud = p.vpis().per_cloud;
  ASSERT_EQ(per_cloud.size(), 4u);
  // Microsoft > Google > IBM; Oracle essentially zero (Table 4's ordering;
  // a couple of interior-interface artifacts can leak through — the §7.1
  // failure mode).
  EXPECT_GT(per_cloud[0].overlap, per_cloud[1].overlap);
  EXPECT_GE(per_cloud[1].overlap, per_cloud[2].overlap);
  EXPECT_LE(per_cloud[3].overlap,
            std::max<std::size_t>(3, p.vpis().subject_cbis / 300));
  // VPI share of CBIs is material but below a third (paper: 20%).
  const double share =
      static_cast<double>(p.vpis().vpi_cbis.size()) /
      static_cast<double>(p.vpis().subject_cbis);
  EXPECT_GT(share, 0.04);
  EXPECT_LT(share, 0.33);
}

TEST(PaperShape, IcgHasGiantComponent) {
  Pipeline& p = paper_pipeline();
  const IcgStats stats = icg_stats(p.campaign().fabric());
  // The paper's 92.3%; remote peering stitches ours into the same regime.
  EXPECT_GT(stats.largest_component_fraction, 0.5);
}

TEST(PaperShape, MostPinnedSegmentsStayInMetro) {
  Pipeline& p = paper_pipeline();
  const RemotePeeringStats remote =
      remote_peering_stats(p.campaign().fabric(), p.pinning());
  EXPECT_GT(remote.both_ends_pinned, 100u);
  EXPECT_GT(remote.same_metro_fraction, 0.6);  // paper: 98%
  EXPECT_GT(remote.cross_metro, 0u);           // remote peerings exist
}

TEST(PaperShape, BgpSeesOnlyAFractionOfPeers) {
  Pipeline& p = paper_pipeline();
  const PeeringClassifier classifier = p.classifier();
  const BgpCoverage coverage =
      bgp_coverage(p.campaign().fabric(), classifier, p.snapshot_round2(),
                   p.subject_asns());
  // We rediscover the bulk of BGP-reported peers (paper 93%)...
  EXPECT_GT(coverage.coverage(), 0.6);
  // ...and find many times more that BGP never shows (paper: 3k vs 250).
  EXPECT_GT(coverage.inferred_not_in_bgp, coverage.bgp_reported * 3);
}

TEST(PaperShape, HeuristicsConfirmLikeThePaper) {
  Pipeline& p = paper_pipeline();
  const HeuristicCounts& h = p.heuristics();
  const double confirmed_fraction =
      static_cast<double>(h.cum_ixp_abis + h.cum_hybrid_abis +
                          h.cum_reachable_abis) /
      static_cast<double>(h.total_abis);
  EXPECT_GT(confirmed_fraction, 0.75);  // paper: 87.8%
}

TEST(PaperShape, AliasCorrectionsAreRare) {
  Pipeline& p = paper_pipeline();
  const AliasVerifyStats& a = p.alias_verification();
  EXPECT_GT(a.majority_fraction, 0.8);  // paper: 94%
  const std::size_t corrections = a.abi_to_cbi + a.cbi_to_abi + a.cbi_to_cbi;
  // Paper: 45 of 8.68k interfaces in sets.
  EXPECT_LT(corrections, a.interfaces_in_sets / 10 + 5);
}

TEST(PaperShape, PinningPrecisionRegime) {
  Pipeline& p = paper_pipeline();
  const GroundTruthAccuracy accuracy =
      score_against_truth(p.world(), p.pinning());
  EXPECT_GT(accuracy.accuracy, 0.9);  // the 99.3%-precision regime
  EXPECT_GT(accuracy.pinned, 500u);
}

}  // namespace
}  // namespace cloudmap
