// Exhaustive corruption sweeps over the two untrusted-bytes surfaces the
// older sweeps (tests/test_snapshot_io.cpp, test_serve.cpp) did not cover:
// CMSHARD2 part files through the merge reader, and every serve frame type.
// The contract (DESIGN.md §14): EVERY single-byte flip and EVERY truncation
// of a valid artifact yields a clean diagnostic rejection — never a crash,
// never silent acceptance of different bytes. Plus the forged-header
// fail-fast regressions: a header that *declares* gigabytes must be refused
// by arithmetic against the actual input size, before any allocation.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "infer/campaign.h"
#include "io/shard.h"
#include "io/snapshot.h"
#include "serve/protocol.h"

namespace cloudmap {
namespace {

// --- shared forgery helpers ------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void patch_u32(std::string& bytes, std::size_t offset, std::uint32_t value) {
  ASSERT_LE(offset + 4, bytes.size());
  for (std::size_t i = 0; i < 4; ++i)
    bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
}

std::uint32_t crc_of(const std::string& bytes, std::size_t offset,
                     std::size_t size) {
  return snapshot_crc32(
      reinterpret_cast<const unsigned char*>(bytes.data()) + offset, size);
}

// --- shard part fixtures ---------------------------------------------------

Campaign::SweepChunkResult sample_result(std::uint32_t salt) {
  Campaign::SweepChunkResult result;
  result.traceroutes = 3 + salt;
  result.probes = 40 + salt;
  result.walk.examined = 3 + salt;
  result.walk.extracted = 2;
  result.adjacencies = {{0x0A000001u + salt, 0x0A000002u + salt}};
  CandidateSegment segment;
  segment.cbi = Ipv4(203, 0, 113, static_cast<std::uint8_t>(9 + salt));
  segment.abi = Ipv4(10, 0, 0, 2);
  segment.destination = Ipv4(198, 51, 100, 7);
  segment.region = RegionId{1};
  segment.abi_rtt_ms = 12.5;
  segment.cbi_rtt_ms = 14.25;
  segment.hop_density = 0.75;
  result.segments = {segment};
  return result;
}

// One finished single-shard part with `total` records, as raw bytes.
std::string part_bytes(const std::string& scratch, std::uint64_t total) {
  ShardPartHeader header;
  header.config_digest = shard_digest("corrupt-sweep");
  header.round = 1;
  header.shard_index = 0;
  header.shard_count = 1;
  header.total_items = total;
  header.target_count = total;
  ShardPartWriter writer;
  std::string error;
  EXPECT_TRUE(writer.open(scratch, header, &error)) << error;
  for (std::uint64_t item = 0; item < total; ++item)
    EXPECT_TRUE(writer.append(
        item, sample_result(static_cast<std::uint32_t>(item)), &error))
        << error;
  EXPECT_TRUE(writer.finish(&error)) << error;
  return read_file(scratch);
}

// Drain one part set through the merge. True only if every record of every
// part parses and the merge completes — i.e. the bytes were fully accepted.
bool merge_accepts(const std::vector<std::string>& paths) {
  ShardMerge merge;
  std::string error;
  if (!merge.open(paths, &error)) return false;
  Campaign::SweepChunkResult result;
  try {
    while (merge.next(result)) {
    }
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

// --- CMSHARD2 sweeps -------------------------------------------------------

TEST(CorruptSweep, ShardPartEveryByteFlipIsRejected) {
  const std::string dir = testing::TempDir();
  const std::string good = part_bytes(dir + "sweepflip_make.part", 3);
  const std::string victim = dir + "sweepflip_case.part";
  ASSERT_TRUE(merge_accepts({dir + "sweepflip_make.part"}));

  for (std::size_t at = 0; at < good.size(); ++at) {
    std::string bytes = good;
    bytes[at] = static_cast<char>(bytes[at] ^ 0xFF);
    write_file(victim, bytes);
    EXPECT_FALSE(merge_accepts({victim})) << "flip at byte " << at
                                          << " was accepted";
  }
}

TEST(CorruptSweep, ShardPartEveryTruncationIsRejected) {
  const std::string dir = testing::TempDir();
  const std::string good = part_bytes(dir + "sweeptrunc_make.part", 3);
  const std::string victim = dir + "sweeptrunc_case.part";

  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    write_file(victim, good.substr(0, keep));
    EXPECT_FALSE(merge_accepts({victim}))
        << "truncation to " << keep << " bytes was accepted";
  }
}

// --- serve frame sweeps (every frame type the daemon emits or accepts) -----

std::vector<std::pair<std::string, std::string>> all_frames() {
  using namespace serve;
  QueryRequest request;
  request.kind = QueryKind::kLookup;
  request.address = 0xCB007109u;
  request.min_confidence = 0.5;
  request.want_briefs = true;

  QueryResponse response;
  response.kind = QueryKind::kLookup;
  response.items = {0, 1, 2};
  SegmentBrief brief;
  brief.index = 1;
  brief.abi = 0x0A000002u;
  brief.cbi = 0xCB007109u;
  brief.peer_asn = 64512;
  brief.confirmation = 2;
  brief.ixp = true;
  brief.confidence = 0.625;
  response.briefs = {brief};
  response.counts.emplace();
  response.counts->segments = 2;
  response.histogram.emplace();
  response.histogram->segments = 2;
  response.found = true;
  response.prefix_network = 0xCB007100u;
  response.prefix_length = 24;
  response.role_cbi = true;

  ServerStats stats;
  stats.served = 128;
  stats.clients = 3;

  std::vector<std::pair<std::string, std::string>> frames;
  const auto add = [&frames](const char* name, MsgType type,
                             const std::string& payload) {
    std::string frame;
    serve::encode_frame(frame, type, payload);
    frames.emplace_back(name, frame);
  };
  add("query", MsgType::kQuery, encode_query_request(request));
  add("reply", MsgType::kReply, encode_query_response(response));
  add("stats", MsgType::kStats, encode_stats(stats));
  add("error", MsgType::kError, encode_text("no snapshot loaded"));
  add("swap", MsgType::kSwap, encode_text("/tmp/fabric.snap"));
  add("ping", MsgType::kPing, "");
  return frames;
}

TEST(CorruptSweep, EveryFrameTypeEveryByteFlipIsRejected) {
  for (const auto& [name, good] : all_frames()) {
    for (std::size_t at = 0; at < good.size(); ++at) {
      std::string bytes = good;
      bytes[at] = static_cast<char>(bytes[at] ^ 0xFF);
      serve::Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const serve::FrameStatus status = serve::decode_frame(
          reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(),
          frame, consumed, &error);
      // A flip in the length prefix may present as a short read
      // (kIncomplete); anything else must be kCorrupt. Never kOk.
      EXPECT_NE(status, serve::FrameStatus::kOk)
          << name << " frame: flip at byte " << at << " was accepted";
    }
  }
}

TEST(CorruptSweep, EveryFrameTypeEveryTruncationIsRejected) {
  for (const auto& [name, good] : all_frames()) {
    for (std::size_t keep = 0; keep < good.size(); ++keep) {
      const std::string bytes = good.substr(0, keep);
      serve::Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const serve::FrameStatus status = serve::decode_frame(
          reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(),
          frame, consumed, &error);
      EXPECT_NE(status, serve::FrameStatus::kOk)
          << name << " frame truncated to " << keep << " bytes was accepted";
    }
  }
}

// --- forged-header fail-fast regressions (minimized reproducers also live
// --- in fuzz/corpus/) ------------------------------------------------------

// A container header declaring 4 billion sections must be refused by the
// count cap, not by attempting a 96 GiB table read.
TEST(ForgedHeader, SnapshotSectionCountFailsFast) {
  RunSnapshot snap;
  std::ostringstream out;
  save_snapshot(out, snap);
  std::string bytes = out.str();
  patch_u32(bytes, 8, 0xFFFFFFFFu);

  std::istringstream in(bytes);
  std::string error;
  EXPECT_FALSE(load_snapshot(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// A segments section declaring 0xFFFFFFFF records — with its section CRC
// re-stamped so the forgery reaches the record decoder — must be refused by
// the count-vs-remaining-bytes cap before any reserve.
TEST(ForgedHeader, SnapshotSegmentCountFailsFast) {
  RunSnapshot snap;
  SnapshotSegment seg;
  seg.abi = Ipv4(10, 0, 0, 2);
  seg.cbi = Ipv4(203, 0, 113, 9);
  seg.observations = 1;
  snap.segments = {seg};
  std::ostringstream out;
  save_snapshot(out, snap, 2);
  std::string bytes = out.str();

  // Find the segments section (id 2) in the table.
  std::uint32_t section_count = 0;
  for (std::size_t i = 0; i < 4; ++i)
    section_count |= std::uint32_t{
        static_cast<unsigned char>(bytes[8 + i])} << (8 * i);
  std::size_t entry = 0;
  for (std::uint32_t s = 0; s < section_count; ++s)
    if (static_cast<unsigned char>(bytes[12 + s * 24]) == 2) {
      entry = 12 + s * 24;
      break;
    }
  ASSERT_NE(entry, 0u);
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    offset |= std::uint64_t{
        static_cast<unsigned char>(bytes[entry + 4 + i])} << (8 * i);
    size |= std::uint64_t{
        static_cast<unsigned char>(bytes[entry + 12 + i])} << (8 * i);
  }
  patch_u32(bytes, static_cast<std::size_t>(offset), 0xFFFFFFFFu);
  patch_u32(bytes, entry + 20,
            crc_of(bytes, static_cast<std::size_t>(offset),
                   static_cast<std::size_t>(size)));

  std::istringstream in(bytes);
  std::string error;
  EXPECT_FALSE(load_snapshot(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// A part header declaring 2^28 records in a ~600-byte file — header CRC
// re-stamped so the forgery passes integrity and reaches the cap — must be
// refused at open by arithmetic against the file size.
TEST(ForgedHeader, ShardRecordCountFailsFast) {
  const std::string dir = testing::TempDir();
  std::string bytes = part_bytes(dir + "forgedcount_make.part", 2);
  patch_u32(bytes, 44, 0x10000000u);
  patch_u32(bytes, 48, 0);
  patch_u32(bytes, 52, crc_of(bytes, 0, 52));
  const std::string victim = dir + "forgedcount_case.part";
  write_file(victim, bytes);

  ShardPartReader reader;
  std::string error;
  EXPECT_FALSE(reader.open(victim, &error));
  EXPECT_NE(error.find("records"), std::string::npos) << error;
}

// A record declaring a ~4 GiB payload must be refused by the
// size-vs-remaining-bytes cap, with a diagnostic — never an allocation.
TEST(ForgedHeader, ShardPayloadSizeFailsFast) {
  const std::string dir = testing::TempDir();
  std::string bytes = part_bytes(dir + "forgedsize_make.part", 2);
  patch_u32(bytes, 56 + 8, 0xFFFFFFF0u);
  const std::string victim = dir + "forgedsize_case.part";
  write_file(victim, bytes);

  ShardPartReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(victim, &error)) << error;
  std::uint64_t item = 0;
  Campaign::SweepChunkResult result;
  try {
    reader.next(item, result);
    FAIL() << "forged 4 GiB payload size was accepted";
  } catch (const std::runtime_error& caught) {
    EXPECT_NE(std::string(caught.what()).find("payload"), std::string::npos)
        << caught.what();
  }
}

}  // namespace
}  // namespace cloudmap
