// §5.1 heuristics on crafted fabrics: each signal (IXP-client, hybrid,
// reachability) and the Fig. 2 shift, in isolation.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "infer/heuristics.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class HeuristicsUnit : public ::testing::Test {
 protected:
  HeuristicsUnit()
      : pipeline_(small_pipeline()),
        world_(pipeline_.world()),
        annotator_(pipeline_.annotator()) {
    annotator_.set_snapshot(&pipeline_.snapshot_round2());
    amazon_org_ = pipeline_.campaign().subject_org();

    // Address material drawn from the world: Amazon-announced space, Amazon
    // WHOIS-only space, a client block, and an IXP LAN address with a known
    // member.
    const AsId amazon = world_.cloud_primary(CloudProvider::kAmazon);
    amazon_a_ = world_.ases[amazon.value].announced_prefixes.front()
                    .network().next(77);
    amazon_b_ = world_.ases[amazon.value].announced_prefixes.front()
                    .network().next(78);
    for (const AutonomousSystem& as : world_.ases) {
      if (as.type == AsType::kEnterprise && !as.announced_prefixes.empty()) {
        client_a_ = as.announced_prefixes.front().network().next(77);
        client_b_ = as.announced_prefixes.front().network().next(78);
        break;
      }
    }
    for (const GroundTruthInterconnect& ic : world_.interconnects) {
      if (ic.kind == PeeringKind::kPublicIxp &&
          ic.cloud == CloudProvider::kAmazon) {
        ixp_member_ = world_.interface(ic.client_interface).address;
        if (annotator_.annotate(ixp_member_).ixp) break;
      }
    }
  }

  HeuristicVerifier verifier() {
    return HeuristicVerifier(pipeline_.forwarder(), annotator_, amazon_org_,
                             pipeline_.public_vantage());
  }

  static CandidateSegment candidate(Ipv4 prior, Ipv4 abi, Ipv4 cbi,
                                    Ipv4 post) {
    CandidateSegment c;
    c.prior_abi = prior;
    c.abi = abi;
    c.cbi = cbi;
    c.post_cbi = post;
    c.destination = Ipv4(20, 99, 0, 1);
    c.region = RegionId{0};
    return c;
  }

  Pipeline& pipeline_;
  const World& world_;
  Annotator annotator_;
  OrgId amazon_org_;
  Ipv4 amazon_a_, amazon_b_, client_a_, client_b_, ixp_member_;
};

TEST_F(HeuristicsUnit, IxpClientConfirms) {
  ASSERT_FALSE(ixp_member_.is_unspecified());
  Fabric fabric;
  fabric.add_segment(candidate(Ipv4{}, amazon_a_, ixp_member_, Ipv4{}), 1);
  HeuristicVerifier v = verifier();
  EXPECT_TRUE(v.cbi_in_ixp(fabric, 0));
  const HeuristicCounts counts = v.apply(fabric);
  EXPECT_EQ(counts.cum_ixp_abis, 1u);
  EXPECT_EQ(fabric.segments()[0].confirmation, Confirmation::kIxpClient);
  EXPECT_FALSE(fabric.segments()[0].shifted);
}

TEST_F(HeuristicsUnit, HybridDetection) {
  Fabric fabric;
  // amazon_a_ is followed by both an Amazon interface and a client
  // interface across traces — the Fig. 3 signature.
  fabric.add_adjacency(amazon_a_, amazon_b_);
  fabric.add_adjacency(amazon_a_, client_a_);
  HeuristicVerifier v = verifier();
  EXPECT_TRUE(v.is_hybrid(fabric, amazon_a_));
  // Only Amazon successors: not hybrid.
  Fabric fabric2;
  fabric2.add_adjacency(amazon_a_, amazon_b_);
  EXPECT_FALSE(v.is_hybrid(fabric2, amazon_a_));
  // Only client successors: not hybrid either.
  Fabric fabric3;
  fabric3.add_adjacency(amazon_a_, client_a_);
  fabric3.add_adjacency(amazon_a_, client_b_);
  EXPECT_FALSE(v.is_hybrid(fabric3, amazon_a_));
}

TEST_F(HeuristicsUnit, HybridConfirmsSegment) {
  Fabric fabric;
  fabric.add_segment(candidate(Ipv4{}, amazon_a_, client_a_, client_b_), 1);
  fabric.add_adjacency(amazon_a_, amazon_b_);
  fabric.add_adjacency(amazon_a_, client_a_);
  HeuristicVerifier v = verifier();
  const HeuristicCounts counts = v.apply(fabric);
  EXPECT_EQ(counts.cum_hybrid_abis, 1u);
  EXPECT_EQ(fabric.segments()[0].confirmation, Confirmation::kHybrid);
}

TEST_F(HeuristicsUnit, Fig2ShiftAppliedWhenPriorIsHybrid) {
  // amazon_b_ (the candidate ABI) has only client successors; the prior hop
  // amazon_a_ is hybrid — the address-sharing artifact. The segment must
  // shift back: (amazon_a_, amazon_b_) is the true interconnection.
  Fabric fabric;
  fabric.add_segment(candidate(amazon_a_, amazon_b_, client_a_, client_b_),
                     1);
  fabric.add_adjacency(amazon_a_, amazon_b_);   // amazon successor
  fabric.add_adjacency(amazon_a_, client_b_);   // client successor → hybrid
  fabric.add_adjacency(amazon_b_, client_a_);   // only client successors
  HeuristicVerifier v = verifier();
  const HeuristicCounts counts = v.apply(fabric);
  EXPECT_EQ(counts.shifts_applied, 1u);
  ASSERT_EQ(fabric.segments().size(), 1u);
  EXPECT_EQ(fabric.segments()[0].abi, amazon_a_);
  EXPECT_EQ(fabric.segments()[0].cbi, amazon_b_);
  EXPECT_TRUE(fabric.segments()[0].shifted);
  // The old client-side annotation is kept as the owner hint.
  EXPECT_EQ(fabric.segments()[0].owner_hint,
            annotator_.annotate(client_a_).asn);
}

TEST_F(HeuristicsUnit, NoShiftWithoutHybridPrior) {
  Fabric fabric;
  fabric.add_segment(candidate(amazon_a_, amazon_b_, client_a_, client_b_),
                     1);
  fabric.add_adjacency(amazon_a_, amazon_b_);  // prior NOT hybrid
  fabric.add_adjacency(amazon_b_, client_a_);
  HeuristicVerifier v = verifier();
  v.apply(fabric);
  EXPECT_EQ(fabric.segments()[0].abi, amazon_b_);  // unchanged
  EXPECT_FALSE(fabric.segments()[0].shifted);
}

TEST_F(HeuristicsUnit, ReachabilityUsesPublicVantage) {
  // A genuinely reachable client interface vs an Amazon border interface.
  HeuristicVerifier v = verifier();
  std::size_t reachable_clients = 0;
  std::size_t reachable_amazon = 0;
  std::size_t checked = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    if (v.reachable_from_public(
            world_.interface(ic.client_interface).address))
      ++reachable_clients;
    if (v.reachable_from_public(
            world_.interface(ic.cloud_interface).address))
      ++reachable_amazon;
    if (++checked > 120) break;
  }
  EXPECT_GT(reachable_clients, 0u);
  EXPECT_EQ(reachable_amazon, 0u);
}

TEST_F(HeuristicsUnit, IndividualCountsIndependentOfOrder) {
  // The individual evaluation must not be affected by cumulative shifts:
  // applying twice to identical fabrics yields identical individual counts.
  Fabric fabric_a;
  fabric_a.add_segment(candidate(Ipv4{}, amazon_a_, ixp_member_, Ipv4{}), 1);
  fabric_a.add_segment(candidate(Ipv4{}, amazon_b_, client_a_, client_b_),
                       1);
  fabric_a.add_adjacency(amazon_b_, amazon_a_);
  fabric_a.add_adjacency(amazon_b_, client_a_);
  Fabric fabric_b;
  fabric_b.add_segment(candidate(Ipv4{}, amazon_a_, ixp_member_, Ipv4{}), 1);
  fabric_b.add_segment(candidate(Ipv4{}, amazon_b_, client_a_, client_b_),
                       1);
  fabric_b.add_adjacency(amazon_b_, amazon_a_);
  fabric_b.add_adjacency(amazon_b_, client_a_);

  HeuristicVerifier v = verifier();
  const HeuristicCounts a = v.apply(fabric_a);
  const HeuristicCounts b = v.apply(fabric_b);
  EXPECT_EQ(a.ixp_abis, b.ixp_abis);
  EXPECT_EQ(a.hybrid_abis, b.hybrid_abis);
  EXPECT_EQ(a.reachable_abis, b.reachable_abis);
}

}  // namespace
}  // namespace cloudmap
