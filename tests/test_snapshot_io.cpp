// Binary snapshot codec (io/snapshot.h): round trips, byte-determinism,
// and the corruption contract — a damaged file is rejected with a
// diagnostic, never a crash or a silent partial load.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <sstream>
#include <string>

#include "fixtures.h"
#include "io/snapshot.h"
#include "query/snapshot.h"

namespace cloudmap {
namespace {

// A small snapshot exercising every section and optional field, built in
// deliberately non-canonical order so the tests also cover canonicalize().
RunSnapshot sample_snapshot() {
  RunSnapshot snap;
  snap.seed = 424242;
  snap.threads = 3;
  snap.subject = 0;  // kAmazon

  SnapshotSegment b;
  b.abi = Ipv4(10, 0, 0, 2);
  b.cbi = Ipv4(203, 0, 113, 9);
  b.prior_abi = Ipv4(10, 0, 0, 1);
  b.post_cbi = Ipv4(203, 0, 113, 10);
  b.first_round = 2;
  b.confirmation = Confirmation::kReachability;
  b.shifted = true;
  b.ixp = true;
  b.peer_asn = Asn{64512};
  b.peer_org = OrgId{7};
  b.group = 1;
  b.regions = {5, 1, 3};            // descending on purpose
  b.dest_slash24s = {0xCB007100u, 0xC0000200u};
  b.observations = 7;
  b.rounds_mask = 0b11;
  b.hop_density = 0.875;
  b.confidence = 0.625;

  SnapshotSegment a;
  a.abi = Ipv4(10, 0, 0, 1);
  a.cbi = Ipv4(198, 51, 100, 4);
  a.confirmation = Confirmation::kIxpClient;
  a.vpi = true;
  a.owner_hint = Asn{64500};
  a.observations = 1;
  a.rounds_mask = 0b01;
  a.hop_density = 1.0;
  a.confidence = 0.75;

  snap.segments = {b, a};  // reversed vs canonical (ABI, CBI) order

  snap.pins.push_back({0xCB007109u, 4, 1, 2, 1});
  snap.pins.push_back({0x0A000001u, 2, 0, 1, 0});
  snap.regional = {{0xC6336404u, 9}};
  snap.alias_sets = {{0xCB007109u, 0x0A000002u}};

  StageReport report;
  report.id = StageId::kRound1;
  report.threads = 3;
  report.workers = 2;
  report.wall_ms = 12.5;
  report.targets = 100;
  report.traceroutes = 99;
  report.probes = 1234;
  report.bgp_cache_hits = 7;
  report.bgp_cache_misses = 2;
  report.retries = 11;
  report.backoff_waits = 11;
  report.backoff_ticks = 704;
  report.recovered_targets = 5;
  report.worker_utilization = 0.75;
  report.tallies = {{"left_cloud", 42.0}};
  snap.stage_reports = {report};
  return snap;
}

std::string save_to_string(const RunSnapshot& snap) {
  std::ostringstream out;
  save_snapshot(out, snap);
  return out.str();
}

TEST(SnapshotIo, HandBuiltRoundTrip) {
  const RunSnapshot original = sample_snapshot();
  const std::string bytes = save_to_string(original);

  std::istringstream in(bytes);
  std::string error;
  const auto loaded = load_snapshot(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->seed, 424242u);
  EXPECT_EQ(loaded->threads, 3);
  EXPECT_EQ(loaded->subject, 0);
  ASSERT_EQ(loaded->segments.size(), 2u);
  // Canonical order: ascending (ABI, CBI), so segment `a` comes first.
  EXPECT_EQ(loaded->segments[0].cbi, Ipv4(198, 51, 100, 4));
  EXPECT_TRUE(loaded->segments[0].vpi);
  EXPECT_EQ(loaded->segments[0].owner_hint, Asn{64500});
  const SnapshotSegment& seg = loaded->segments[1];
  EXPECT_EQ(seg.abi, Ipv4(10, 0, 0, 2));
  EXPECT_EQ(seg.prior_abi, Ipv4(10, 0, 0, 1));
  EXPECT_EQ(seg.post_cbi, Ipv4(203, 0, 113, 10));
  EXPECT_EQ(seg.first_round, 2);
  EXPECT_EQ(seg.confirmation, Confirmation::kReachability);
  EXPECT_TRUE(seg.shifted);
  EXPECT_TRUE(seg.ixp);
  EXPECT_FALSE(seg.vpi);
  EXPECT_EQ(seg.peer_asn, Asn{64512});
  EXPECT_EQ(seg.peer_org, OrgId{7});
  EXPECT_EQ(seg.group, 1);
  EXPECT_EQ(seg.regions, (std::vector<std::uint32_t>{1, 3, 5}));
  // v2 confidence section round-trips bit for bit.
  EXPECT_EQ(loaded->segments[0].observations, 1u);
  EXPECT_EQ(loaded->segments[0].rounds_mask, 0b01u);
  EXPECT_DOUBLE_EQ(loaded->segments[0].hop_density, 1.0);
  EXPECT_DOUBLE_EQ(loaded->segments[0].confidence, 0.75);
  EXPECT_EQ(seg.observations, 7u);
  EXPECT_EQ(seg.rounds_mask, 0b11u);
  EXPECT_DOUBLE_EQ(seg.hop_density, 0.875);
  EXPECT_DOUBLE_EQ(seg.confidence, 0.625);
  ASSERT_EQ(loaded->pins.size(), 2u);
  EXPECT_EQ(loaded->pins[0].address, 0x0A000001u);  // sorted by address
  EXPECT_EQ(loaded->pins[1].metro, 4u);
  EXPECT_EQ(loaded->pins[1].rule, 1);
  EXPECT_EQ(loaded->pins[1].anchor_source, 2);
  ASSERT_EQ(loaded->regional.size(), 1u);
  EXPECT_EQ(loaded->regional[0].second, 9u);
  ASSERT_EQ(loaded->alias_sets.size(), 1u);
  EXPECT_EQ(loaded->alias_sets[0],
            (std::vector<std::uint32_t>{0x0A000002u, 0xCB007109u}));
  ASSERT_EQ(loaded->stage_reports.size(), 1u);
  EXPECT_EQ(loaded->stage_reports[0].id, StageId::kRound1);
  EXPECT_DOUBLE_EQ(loaded->stage_reports[0].wall_ms, 12.5);
  EXPECT_DOUBLE_EQ(loaded->stage_reports[0].worker_utilization, 0.75);
  ASSERT_EQ(loaded->stage_reports[0].tallies.size(), 1u);
  EXPECT_EQ(loaded->stage_reports[0].tallies[0].first, "left_cloud");
  EXPECT_EQ(loaded->stage_reports[0].retries, 11u);
  EXPECT_EQ(loaded->stage_reports[0].backoff_ticks, 704u);
  EXPECT_EQ(loaded->stage_reports[0].recovered_targets, 5u);
}

TEST(SnapshotIo, LegacyV1SaveLoadsWithZeroConfidence) {
  // The writer can still emit the v1 layout (5 sections, no confidence, no
  // retry fields in stage metrics); the loader accepts it and defaults the
  // v2 fields to zero.
  const RunSnapshot original = sample_snapshot();
  std::ostringstream out;
  save_snapshot(out, original, /*version=*/1);
  const std::string bytes = out.str();
  EXPECT_EQ(bytes[6], 1);  // header carries version 1
  std::istringstream in(bytes);
  std::string error;
  const auto loaded = load_snapshot(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->segments.size(), 2u);
  for (const SnapshotSegment& seg : loaded->segments) {
    EXPECT_EQ(seg.observations, 0u);
    EXPECT_EQ(seg.rounds_mask, 0u);
    EXPECT_DOUBLE_EQ(seg.hop_density, 0.0);
    EXPECT_DOUBLE_EQ(seg.confidence, 0.0);
  }
  ASSERT_EQ(loaded->stage_reports.size(), 1u);
  EXPECT_EQ(loaded->stage_reports[0].retries, 0u);
  EXPECT_EQ(loaded->stage_reports[0].backoff_ticks, 0u);
  // Resaving a legacy file at the default version upgrades it to the
  // current flat format.
  const std::string resaved = save_to_string(*loaded);
  EXPECT_EQ(resaved[6], 3);
}

TEST(SnapshotIo, RejectsConfidenceOutOfRangeWithValidCrc) {
  // Corrupt the first confidence score to 2.0 and fix up the section CRC,
  // so only the domain check can catch it. The confidence section only
  // exists in the v2 layout (v3 carries confidence inside the flat blob, a
  // case test_snapshot_v3.cpp covers), so save v2 explicitly.
  RunSnapshot snap = sample_snapshot();
  canonicalize(snap);
  std::ostringstream v2_out;
  save_snapshot(v2_out, snap, /*version=*/2);
  const std::string good = v2_out.str();
  std::size_t conf_offset = 0, conf_size = 0, crc_pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t base = 12 + i * 24;
    std::uint32_t id = 0;
    std::memcpy(&id, good.data() + base, 4);
    if (id != 6) continue;
    std::uint64_t off = 0, size = 0;
    std::memcpy(&off, good.data() + base + 4, 8);
    std::memcpy(&size, good.data() + base + 12, 8);
    conf_offset = static_cast<std::size_t>(off);
    conf_size = static_cast<std::size_t>(size);
    crc_pos = base + 20;
  }
  ASSERT_GT(conf_size, 0u);
  std::string bytes = good;
  // Payload: u32 count, then {u32 obs, u32 rounds_mask, f64 density,
  // f64 confidence} per segment — first score at +4+4+4+8.
  const double bad_score = 2.0;
  std::memcpy(bytes.data() + conf_offset + 20, &bad_score, 8);
  const std::uint32_t crc = snapshot_crc32(
      reinterpret_cast<const unsigned char*>(bytes.data()) + conf_offset,
      conf_size);
  std::memcpy(bytes.data() + crc_pos, &crc, 4);
  std::istringstream in(bytes);
  std::string error;
  EXPECT_FALSE(load_snapshot(in, &error).has_value());
  EXPECT_NE(error.find("section 6"), std::string::npos) << error;
}

TEST(SnapshotIo, SaveLoadSaveIsByteIdentical) {
  const std::string first = save_to_string(sample_snapshot());
  std::istringstream in(first);
  const auto loaded = load_snapshot(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(save_to_string(*loaded), first);
}

TEST(SnapshotIo, EmptySnapshotRoundTrips) {
  const std::string bytes = save_to_string(RunSnapshot{});
  std::istringstream in(bytes);
  std::string error;
  const auto loaded = load_snapshot(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->segments.empty());
  EXPECT_EQ(save_to_string(*loaded), bytes);
}

TEST(SnapshotIo, PipelineSnapshotRoundTrips) {
  const RunSnapshot& snap = testfx::small_pipeline().run_snapshot();
  ASSERT_FALSE(snap.segments.empty());
  ASSERT_FALSE(snap.stage_reports.empty());
  const std::string first = save_to_string(snap);
  std::istringstream in(first);
  std::string error;
  const auto loaded = load_snapshot(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->segments.size(), snap.segments.size());
  EXPECT_EQ(loaded->pins.size(), snap.pins.size());
  EXPECT_EQ(loaded->alias_sets.size(), snap.alias_sets.size());
  EXPECT_EQ(loaded->stage_reports.size(), snap.stage_reports.size());
  EXPECT_EQ(save_to_string(*loaded), first);
}

// --- corruption contract ---------------------------------------------------

std::optional<RunSnapshot> load_bytes(std::string bytes, std::string* error) {
  std::istringstream in(std::move(bytes));
  return load_snapshot(in, error);
}

TEST(SnapshotIo, RejectsBadMagic) {
  std::string bytes = save_to_string(sample_snapshot());
  bytes[0] = 'X';
  std::string error;
  EXPECT_FALSE(load_bytes(bytes, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(SnapshotIo, RejectsUnknownVersion) {
  std::string bytes = save_to_string(sample_snapshot());
  bytes[6] = static_cast<char>(kSnapshotFormatVersion + 1);
  std::string error;
  EXPECT_FALSE(load_bytes(bytes, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotIo, CrcCatchesEveryPayloadByteFlip) {
  const std::string good = save_to_string(sample_snapshot());
  // Payloads start after the header and the section table; read the section
  // count from the file so the sweep covers every payload byte regardless
  // of which format version the writer emits.
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, good.data() + 8, 4);
  const std::size_t payload_start = 12 + section_count * std::size_t{24};
  ASSERT_LT(payload_start, good.size());
  // Flip one bit of every payload byte in turn: each must be caught by the
  // section CRC (or a downstream range check), never crash, never load.
  for (std::size_t i = payload_start; i < good.size(); ++i) {
    std::string bytes = good;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    std::string error;
    EXPECT_FALSE(load_bytes(bytes, &error).has_value())
        << "flip at byte " << i << " was accepted";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotIo, RejectsTruncationAtEveryLength) {
  const std::string good = save_to_string(sample_snapshot());
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::string error;
    EXPECT_FALSE(load_bytes(good.substr(0, len), &error).has_value())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(SnapshotIo, RejectsTrailingGarbage) {
  std::string bytes = save_to_string(sample_snapshot());
  bytes += "extra";
  std::string error;
  EXPECT_FALSE(load_bytes(bytes, &error).has_value());
}

TEST(SnapshotIo, RejectsOutOfRangeEnumWithValidCrc) {
  // Corrupt a field *and* fix up the section CRC so only the range check
  // can catch it: confirmation byte of the first segment record. The
  // byte-addressed segment section is v1/v2 only, so save v2 explicitly
  // (v3 enum checks are exercised in test_snapshot_v3.cpp).
  RunSnapshot snap = sample_snapshot();
  canonicalize(snap);
  std::ostringstream v2_out;
  save_snapshot(v2_out, snap, /*version=*/2);
  const std::string good = v2_out.str();
  // Find the segments section (id 2) in the table to locate its payload.
  const auto entry_at = [&](std::size_t i) {
    return 12 + i * 24;  // header is 12 bytes, entries 24
  };
  std::size_t seg_offset = 0, seg_size = 0, crc_pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t base = entry_at(i);
    std::uint32_t id = 0;
    std::memcpy(&id, good.data() + base, 4);
    if (id != 2) continue;
    std::uint64_t off = 0, size = 0;
    std::memcpy(&off, good.data() + base + 4, 8);
    std::memcpy(&size, good.data() + base + 12, 8);
    seg_offset = static_cast<std::size_t>(off);
    seg_size = static_cast<std::size_t>(size);
    crc_pos = base + 20;
  }
  ASSERT_GT(seg_size, 0u);
  std::string bytes = good;
  // Segment payload: u32 count, then the record; confirmation follows
  // 4×u32 addresses + i32 first_round.
  const std::size_t confirmation_pos = seg_offset + 4 + 16 + 4;
  bytes[confirmation_pos] = 9;  // Confirmation only goes to 4
  const std::uint32_t crc = snapshot_crc32(
      reinterpret_cast<const unsigned char*>(bytes.data()) + seg_offset,
      seg_size);
  std::memcpy(bytes.data() + crc_pos, &crc, 4);
  std::string error;
  EXPECT_FALSE(load_bytes(bytes, &error).has_value());
  EXPECT_NE(error.find("section 2"), std::string::npos) << error;
}

TEST(SnapshotIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "cloudmap_snapshot_test.snap";
  ASSERT_TRUE(save_snapshot_file(path, sample_snapshot()));
  std::string error;
  const auto loaded = load_snapshot_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->segments.size(), 2u);
  EXPECT_FALSE(load_snapshot_file(path + ".missing", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cloudmap
