// Gao-Rexford propagation, snapshot visibility, customer cones.
#include <gtest/gtest.h>

#include "controlplane/bgp.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

class BgpTest : public ::testing::Test {
 protected:
  BgpTest() : sim_(small_world()) {}
  BgpSimulator sim_;
};

TEST_F(BgpTest, OriginHasSelfRoute) {
  const World& world = small_world();
  for (std::uint32_t o = 0; o < world.ases.size(); ++o) {
    if (world.ases[o].type == AsType::kCloud) continue;
    EXPECT_EQ(sim_.routes_to(AsId{o})[o].route_class, RouteClass::kSelf);
  }
}

TEST_F(BgpTest, EveryClientReachableFromTier1s) {
  const World& world = small_world();
  std::vector<AsId> tier1;
  for (std::uint32_t i = 0; i < world.ases.size(); ++i)
    if (world.ases[i].type == AsType::kTier1) tier1.push_back(AsId{i});
  ASSERT_FALSE(tier1.empty());
  for (std::uint32_t o = 0; o < world.ases.size(); ++o) {
    const AutonomousSystem& as = world.ases[o];
    if (as.type == AsType::kCloud) continue;
    if (as.providers.empty() && as.type != AsType::kTier1) continue;
    for (const AsId t1 : tier1)
      EXPECT_TRUE(sim_.reachable(t1, AsId{o}))
          << world.ases[t1.value].name << " -> " << as.name;
  }
}

TEST_F(BgpTest, PathsEndAtOriginAndAreValleyFree) {
  const World& world = small_world();
  // Relationship lookup helpers.
  auto is_provider_of = [&](AsId p, AsId c) {
    for (const AsId provider : world.ases[c.value].providers)
      if (provider == p) return true;
    return false;
  };
  auto is_peer_of = [&](AsId a, AsId b) {
    for (const AsId peer : world.ases[a.value].peers)
      if (peer == b) return true;
    return false;
  };

  int checked = 0;
  for (std::uint32_t from = 0; from < world.ases.size() && checked < 400;
       from += 3) {
    for (std::uint32_t to = 1; to < world.ases.size() && checked < 400;
         to += 7) {
      if (from == to) continue;
      if (world.ases[from].type == AsType::kCloud ||
          world.ases[to].type == AsType::kCloud)
        continue;
      const auto path = sim_.path(AsId{from}, AsId{to});
      if (path.empty()) continue;
      ++checked;
      EXPECT_EQ(path.front(), (AsId{from}));
      EXPECT_EQ(path.back(), (AsId{to}));
      // Valley-free: once the path goes "down" (provider→customer) or
      // laterally (peer), it must keep going down. We walk from the origin
      // backwards: `path` runs from viewer toward origin, so reverse it to
      // get the announcement's propagation direction.
      bool went_down_or_peer = false;
      int peer_links = 0;
      for (std::size_t i = path.size(); i-- > 1;) {
        // Announcement step: path[i] announces to path[i-1].
        const AsId announcer = path[i];
        const AsId receiver = path[i - 1];
        if (is_provider_of(receiver, announcer)) {
          // customer→provider announcement: only allowed before any
          // down/peer step.
          EXPECT_FALSE(went_down_or_peer) << "valley in path";
        } else if (is_peer_of(announcer, receiver)) {
          ++peer_links;
          went_down_or_peer = true;
        } else {
          EXPECT_TRUE(is_provider_of(announcer, receiver));
          went_down_or_peer = true;
        }
      }
      EXPECT_LE(peer_links, 1) << "more than one peer link on path";
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(BgpTest, PreferenceOrderCustomerOverPeerOverProvider) {
  const World& world = small_world();
  for (std::uint32_t o = 0; o < world.ases.size(); o += 5) {
    if (world.ases[o].type == AsType::kCloud) continue;
    const auto& table = sim_.routes_to(AsId{o});
    for (std::uint32_t v = 0; v < world.ases.size(); ++v) {
      const RouteEntry& entry = table[v];
      if (entry.route_class != RouteClass::kCustomer) continue;
      // A customer route implies the origin is in v's customer cone; the
      // next hop must be one of v's customers.
      bool next_is_customer = false;
      for (const AsId customer : world.ases[v].customers)
        if (customer == entry.next_hop) next_is_customer = true;
      EXPECT_TRUE(next_is_customer);
    }
  }
}

TEST_F(BgpTest, SnapshotHidesVpiOnlyPeerings) {
  const World& world = small_world();
  const auto feeds = default_collector_feeds(world, 11);
  const BgpSnapshot snapshot = build_snapshot(world, sim_, feeds);

  // Find a client whose only Amazon interconnects are VPIs: its AS link
  // with Amazon must not appear in the snapshot.
  const Asn amazon_asn =
      world.ases[world.cloud_primary(CloudProvider::kAmazon).value].asn;
  int checked = 0;
  for (std::uint32_t i = 0; i < world.ases.size(); ++i) {
    bool has_amazon = false;
    bool all_vpi = true;
    for (const GroundTruthInterconnect& ic : world.interconnects) {
      if (ic.cloud != CloudProvider::kAmazon || ic.client.value != i)
        continue;
      has_amazon = true;
      if (ic.kind != PeeringKind::kVpi) all_vpi = false;
    }
    if (!has_amazon || !all_vpi) continue;
    ++checked;
    EXPECT_FALSE(snapshot.link_visible(amazon_asn, world.ases[i].asn))
        << world.ases[i].name;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(BgpTest, SnapshotSeesTier1CloudLinks) {
  const World& world = small_world();
  const auto feeds = default_collector_feeds(world, 11);
  const BgpSnapshot snapshot = build_snapshot(world, sim_, feeds);
  const Asn amazon_asn =
      world.ases[world.cloud_primary(CloudProvider::kAmazon).value].asn;
  int visible = 0;
  for (std::uint32_t i = 0; i < world.ases.size(); ++i) {
    if (world.ases[i].type != AsType::kTier1) continue;
    bool has_xconnect = false;
    for (const GroundTruthInterconnect& ic : world.interconnects)
      if (ic.cloud == CloudProvider::kAmazon && ic.client.value == i &&
          ic.kind == PeeringKind::kCrossConnect)
        has_xconnect = true;
    if (has_xconnect && snapshot.link_visible(amazon_asn, world.ases[i].asn))
      ++visible;
  }
  EXPECT_GT(visible, 0);
}

TEST_F(BgpTest, IntermittentPrefixesAppearOnlyInRound2) {
  const World& world = small_world();
  const auto feeds = default_collector_feeds(world, 11);
  SnapshotOptions round1;
  round1.include_intermittent = false;
  SnapshotOptions round2;
  round2.include_intermittent = true;
  const BgpSnapshot snap1 = build_snapshot(world, sim_, feeds, round1);
  const BgpSnapshot snap2 = build_snapshot(world, sim_, feeds, round2);
  EXPECT_LT(snap1.origin_of.size(), snap2.origin_of.size());
  // Round-1 entries are a subset of round-2 entries.
  snap1.origin_of.for_each([&](const Prefix& prefix, const Asn& origin) {
    const Asn* other = snap2.origin_of.exact(prefix);
    ASSERT_NE(other, nullptr) << prefix.to_string();
    EXPECT_EQ(*other, origin);
  });
}

TEST_F(BgpTest, CustomerConesAreSupersetsOfOwnSpace) {
  const World& world = small_world();
  const auto cones = customer_cone_slash24s(world);
  for (std::uint32_t i = 0; i < world.ases.size(); ++i) {
    std::uint64_t own = 0;
    for (const Prefix& p : world.ases[i].announced_prefixes)
      own += p.length() >= 24 ? 1 : (std::uint64_t{1} << (24 - p.length()));
    EXPECT_GE(cones[i], own) << world.ases[i].name;
  }
  // Tier-1 cones dominate enterprise cones.
  std::uint64_t max_tier1 = 0;
  std::uint64_t max_enterprise = 0;
  for (std::uint32_t i = 0; i < world.ases.size(); ++i) {
    if (world.ases[i].type == AsType::kTier1)
      max_tier1 = std::max(max_tier1, cones[i]);
    if (world.ases[i].type == AsType::kEnterprise)
      max_enterprise = std::max(max_enterprise, cones[i]);
  }
  EXPECT_GT(max_tier1, max_enterprise);
}

TEST_F(BgpTest, LinkKeyIsCanonical) {
  EXPECT_EQ(BgpSnapshot::link_key(Asn{5}, Asn{9}),
            BgpSnapshot::link_key(Asn{9}, Asn{5}));
}

}  // namespace
}  // namespace cloudmap
