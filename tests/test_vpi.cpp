// VPI detection (§7.1): the lower-bound property and the overlap mechanics.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "vpi/detector.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

TEST(Vpi, DetectsSomeVpis) {
  Pipeline& pipeline = small_pipeline();
  EXPECT_GT(pipeline.vpis().vpi_cbis.size(), 0u);
}

TEST(Vpi, DetectedCbisAreOnMultiCloudVpiRouters) {
  // Soundness of the lower bound: a detected VPI CBI sits on a router that
  // truly terminates VPIs to at least two clouds. (The detected *address* is
  // the shared port when the router answers with its incoming interface, or
  // the router's stable default interface otherwise — either way, the
  // router-level claim "this client holds a VPI port" holds.)
  Pipeline& pipeline = small_pipeline();
  const World& world = pipeline.world();
  std::unordered_map<std::uint32_t, std::unordered_set<int>> router_clouds;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kVpi || ic.private_address) continue;
    router_clouds[world.interface(ic.client_interface).router.value].insert(
        static_cast<int>(ic.cloud));
  }
  std::size_t sound = 0;
  std::size_t total = 0;
  for (const std::uint32_t cbi : pipeline.vpis().vpi_cbis) {
    const InterfaceId iface = world.find_interface(Ipv4(cbi));
    ASSERT_TRUE(iface.valid());
    ++total;
    const auto it =
        router_clouds.find(world.interface(iface).router.value);
    if (it != router_clouds.end() && it->second.size() >= 2) ++sound;
  }
  ASSERT_GT(total, 0u);
  // A small residue of default-interface artifacts is tolerated (§7.1
  // discusses exactly this failure mode).
  EXPECT_GE(static_cast<double>(sound) / static_cast<double>(total), 0.9);
}

TEST(Vpi, IsALowerBound) {
  // Detected routers never exceed the set of true multi-cloud VPI routers.
  Pipeline& pipeline = small_pipeline();
  const World& world = pipeline.world();
  std::unordered_map<std::uint32_t, std::unordered_set<int>> router_clouds;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kVpi || ic.private_address) continue;
    router_clouds[world.interface(ic.client_interface).router.value].insert(
        static_cast<int>(ic.cloud));
  }
  std::unordered_set<std::uint32_t> true_multi_cloud_routers;
  for (const auto& [router, clouds] : router_clouds)
    if (clouds.size() >= 2) true_multi_cloud_routers.insert(router);
  ASSERT_GT(true_multi_cloud_routers.size(), 0u);

  std::unordered_set<std::uint32_t> detected_routers;
  for (const std::uint32_t cbi : pipeline.vpis().vpi_cbis) {
    const InterfaceId iface = world.find_interface(Ipv4(cbi));
    if (iface.valid())
      detected_routers.insert(world.interface(iface).router.value);
  }
  std::size_t detected_true = 0;
  for (const std::uint32_t router : detected_routers)
    if (true_multi_cloud_routers.count(router)) ++detected_true;
  EXPECT_LE(detected_true, true_multi_cloud_routers.size());
  EXPECT_GT(detected_true, 0u);
}

TEST(Vpi, CumulativeIsMonotone) {
  Pipeline& pipeline = small_pipeline();
  const auto& per_cloud = pipeline.vpis().per_cloud;
  ASSERT_EQ(per_cloud.size(), 4u);
  std::size_t previous = 0;
  for (const VpiCloudResult& cloud : per_cloud) {
    EXPECT_GE(cloud.cumulative_overlap, previous);
    EXPECT_GE(cloud.cumulative_overlap, cloud.overlap == 0
                                            ? previous
                                            : std::size_t{1});
    previous = cloud.cumulative_overlap;
  }
  EXPECT_EQ(per_cloud.back().cumulative_overlap,
            pipeline.vpis().vpi_cbis.size());
}

TEST(Vpi, OracleOverlapIsEssentiallyZero) {
  // The generator plants no Amazon/Oracle shared ports (Table 4's zero);
  // at most a stray default-interface artifact may leak through.
  Pipeline& pipeline = small_pipeline();
  for (const VpiCloudResult& cloud : pipeline.vpis().per_cloud) {
    if (cloud.provider == CloudProvider::kOracle) {
      EXPECT_LE(cloud.overlap, 1u);
    }
    if (cloud.provider == CloudProvider::kMicrosoft) {
      EXPECT_GT(cloud.overlap, 0u);
    }
  }
}

TEST(Vpi, TargetPoolExcludesIxpCbis) {
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  const auto pool =
      VpiDetector::target_pool(pipeline.campaign(), annotator);
  EXPECT_GT(pool.size(), 0u);
  for (const Ipv4 target : pool) {
    // No pool target is itself an IXP LAN CBI of the subject fabric (the +1
    // of a non-IXP CBI can in principle land anywhere, but the paper's pool
    // construction starts from non-IXP CBIs only).
    if (pipeline.campaign().fabric().unique_cbis().count(target.value())) {
      EXPECT_FALSE(annotator.annotate(target).ixp) << target.to_string();
    }
  }
}

TEST(Vpi, PrivateAddressVpisAreNeverDetected) {
  Pipeline& pipeline = small_pipeline();
  const World& world = pipeline.world();
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (!ic.private_address) continue;
    EXPECT_EQ(pipeline.vpis().vpi_cbis.count(
                  world.interface(ic.client_interface).address.value()),
              0u);
  }
}

}  // namespace
}  // namespace cloudmap
