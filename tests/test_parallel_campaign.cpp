// Determinism of the multi-threaded campaign: the same seed must produce a
// bit-identical fabric, identical round stats, identical Table-1 rows, and
// an identical inference score at every thread count. Run under TSan, these
// tests also exercise the concurrent traceroute fan-out (threads = 4 and 8)
// over the shared const read path.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "fixtures.h"
#include "io/serialize.h"

namespace cloudmap {
namespace {

using testfx::small_world;

// Everything we demand be invariant across thread counts.
struct CampaignRun {
  RoundStats round1;
  RoundStats round2;
  InterfaceTableRow table1_round1;  // Table-1 row after round 1 (snapshot 1)
  InterfaceTableRow table1_round2;  // Table-1 row after round 2 (snapshot 2)
  InferenceScore score;
  std::string fabric_text;  // serialized fabric, segment order and all
  std::size_t peer_asns = 0;
};

CampaignRun run_with_threads(int threads, bool metrics = true) {
  PipelineOptions options;
  options.campaign.threads = threads;
  options.metrics = metrics;
  Pipeline pipeline(small_world(), options);

  CampaignRun run;
  run.round1 = pipeline.round1();
  Annotator annotator1 = pipeline.annotator();
  annotator1.set_snapshot(&pipeline.snapshot_round1());
  run.table1_round1 = Campaign::interface_stats(
      pipeline.campaign().fabric().unique_cbis(), annotator1);

  run.round2 = pipeline.round2();
  Annotator annotator2 = pipeline.annotator();
  annotator2.set_snapshot(&pipeline.snapshot_round2());
  run.table1_round2 = Campaign::interface_stats(
      pipeline.campaign().fabric().unique_cbis(), annotator2);
  run.peer_asns = pipeline.campaign().peer_asn_count(annotator2);

  run.score = pipeline.score();
  std::ostringstream fabric_out;
  write_fabric(fabric_out, pipeline.campaign().fabric());
  run.fabric_text = fabric_out.str();
  return run;
}

void expect_same_stats(const RoundStats& a, const RoundStats& b) {
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.traceroutes, b.traceroutes);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.walk.examined, b.walk.examined);
  EXPECT_EQ(a.walk.extracted, b.walk.extracted);
  EXPECT_EQ(a.walk.never_left_cloud, b.walk.never_left_cloud);
  EXPECT_EQ(a.walk.loop, b.walk.loop);
  EXPECT_EQ(a.walk.gap_before_border, b.walk.gap_before_border);
  EXPECT_EQ(a.walk.cbi_is_destination, b.walk.cbi_is_destination);
  EXPECT_EQ(a.walk.duplicate_before_border, b.walk.duplicate_before_border);
  EXPECT_EQ(a.walk.reentered_cloud, b.walk.reentered_cloud);
}

void expect_same_row(const InterfaceTableRow& a, const InterfaceTableRow& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.bgp_fraction, b.bgp_fraction);
  EXPECT_DOUBLE_EQ(a.whois_fraction, b.whois_fraction);
  EXPECT_DOUBLE_EQ(a.ixp_fraction, b.ixp_fraction);
}

TEST(ParallelCampaign, ThreadCountNeverChangesTheResults) {
  const CampaignRun baseline = run_with_threads(1);
  ASSERT_GT(baseline.round1.traceroutes, 0u);
  ASSERT_FALSE(baseline.fabric_text.empty());

  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    const CampaignRun run = run_with_threads(threads);
    expect_same_stats(run.round1, baseline.round1);
    expect_same_stats(run.round2, baseline.round2);
    expect_same_row(run.table1_round1, baseline.table1_round1);
    expect_same_row(run.table1_round2, baseline.table1_round2);
    EXPECT_EQ(run.peer_asns, baseline.peer_asns);

    EXPECT_EQ(run.score.true_interconnects, baseline.score.true_interconnects);
    EXPECT_EQ(run.score.discoverable_interconnects,
              baseline.score.discoverable_interconnects);
    EXPECT_EQ(run.score.discovered, baseline.score.discovered);
    EXPECT_EQ(run.score.discovered_router_level,
              baseline.score.discovered_router_level);
    EXPECT_EQ(run.score.inferred_cbis, baseline.score.inferred_cbis);
    EXPECT_EQ(run.score.inferred_true_cbis, baseline.score.inferred_true_cbis);
    EXPECT_EQ(run.score.inferred_client_router_cbis,
              baseline.score.inferred_client_router_cbis);

    EXPECT_EQ(run.fabric_text, baseline.fabric_text);
  }
}

// The acceptance criterion for the observability layer: metrics collection
// is purely write-only observation, so switching it off (or varying the
// thread count with it on) must leave the fabric, the round stats, and the
// ground-truth score bit-identical.
TEST(ParallelCampaign, MetricsOnOffNeverChangesTheResults) {
  const CampaignRun baseline = run_with_threads(1, /*metrics=*/true);
  ASSERT_GT(baseline.round1.traceroutes, 0u);
  ASSERT_FALSE(baseline.fabric_text.empty());

  struct Variant {
    int threads;
    bool metrics;
  };
  for (const Variant v : {Variant{1, false}, Variant{4, true},
                          Variant{4, false}}) {
    SCOPED_TRACE("threads = " + std::to_string(v.threads) +
                 (v.metrics ? ", metrics on" : ", metrics off"));
    const CampaignRun run = run_with_threads(v.threads, v.metrics);
    expect_same_stats(run.round1, baseline.round1);
    expect_same_stats(run.round2, baseline.round2);
    expect_same_row(run.table1_round1, baseline.table1_round1);
    expect_same_row(run.table1_round2, baseline.table1_round2);
    EXPECT_EQ(run.peer_asns, baseline.peer_asns);
    EXPECT_EQ(run.score.discovered, baseline.score.discovered);
    EXPECT_EQ(run.score.inferred_cbis, baseline.score.inferred_cbis);
    EXPECT_EQ(run.score.inferred_true_cbis, baseline.score.inferred_true_cbis);
    EXPECT_EQ(run.fabric_text, baseline.fabric_text);
  }
}

// The TSan workhorse: both rounds plus the downstream verification stages
// at threads = 4, racing the workers over the shared const substrate (BGP
// route cache included). Asserts only sanity — the point is the interleaving.
TEST(ParallelCampaign, FourThreadsRunVerificationCleanly) {
  PipelineOptions options;
  options.campaign.threads = 4;
  Pipeline pipeline(small_world(), options);
  pipeline.alias_verification();  // rounds 1-2, §5.1 heuristics, §5.2 alias
  EXPECT_GT(pipeline.round1().traceroutes, 0u);
  EXPECT_GT(pipeline.campaign().fabric().segments().size(), 0u);
  const InferenceScore score = pipeline.score();
  EXPECT_GT(score.recall(), 0.0);
}

// Explicit-target sweeps (the §7.1 VPI path) follow the same contract.
TEST(ParallelCampaign, RunTargetsIsThreadCountInvariant) {
  std::vector<Ipv4> targets;
  for (const Prefix& prefix : small_world().probeable_slash24s())
    targets.push_back(prefix.network().next(7));

  std::string baseline;
  for (const int threads : {1, 4}) {
    PipelineOptions options;
    options.campaign.threads = threads;
    Pipeline pipeline(small_world(), options);
    Campaign campaign(small_world(), pipeline.forwarder(),
                      CloudProvider::kAmazon, options.campaign);
    campaign.run_targets(pipeline.annotator(), targets, /*round=*/1);
    std::ostringstream out;
    write_fabric(out, campaign.fabric());
    if (threads == 1) {
      baseline = out.str();
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(out.str(), baseline);
    }
  }
}

}  // namespace
}  // namespace cloudmap
