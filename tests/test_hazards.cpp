// Adversarial scenario engine: hazard stream determinism, profile parsing,
// the empty-profile bit-identity contract, thread-count invariance under a
// full dataplane profile, MPLS splicing, rate-limit monotonicity, the
// planted remote-peering recovery, and longitudinal churn reconstruction.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "controlplane/bgp.h"
#include "dataplane/traceroute.h"
#include "fixtures.h"
#include "io/snapshot.h"
#include "scenario/hazard.h"
#include "scenario/score.h"
#include "scenario/world_hazards.h"
#include "topology/generator.h"

namespace cloudmap {
namespace {

using testfx::small_world;

TEST(HazardStreams, DeterministicAndDistinct) {
  const std::uint64_t a =
      hazard_stream_seed(7, HazardKind::kLoss, 11, 3);
  EXPECT_EQ(a, hazard_stream_seed(7, HazardKind::kLoss, 11, 3));
  // Any coordinate change moves the stream.
  EXPECT_NE(a, hazard_stream_seed(8, HazardKind::kLoss, 11, 3));
  EXPECT_NE(a, hazard_stream_seed(7, HazardKind::kMplsHiddenHops, 11, 3));
  EXPECT_NE(a, hazard_stream_seed(7, HazardKind::kLoss, 12, 3));
  EXPECT_NE(a, hazard_stream_seed(7, HazardKind::kLoss, 11, 4));

  for (std::uint64_t entity = 0; entity < 100; ++entity) {
    const double u = hazard_u01(7, HazardKind::kIcmpRateLimit, entity, 0);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_TRUE(hazard_chance(7, HazardKind::kLoss, 1, 0, 1.0));
  EXPECT_FALSE(hazard_chance(7, HazardKind::kLoss, 1, 0, 0.0));
}

TEST(HazardProfiles, SpecStringRoundTrips) {
  for (const std::string& name : HazardProfile::preset_names()) {
    const auto preset = HazardProfile::preset(name);
    ASSERT_TRUE(preset.has_value()) << name;
    const auto reparsed = HazardProfile::parse(preset->spec_string());
    ASSERT_TRUE(reparsed.has_value()) << name;
    EXPECT_EQ(reparsed->spec_string(), preset->spec_string()) << name;
  }
  const auto profile = HazardProfile::parse("churn:0.4@6,loss:0.1");
  ASSERT_TRUE(profile.has_value());
  // Canonical form is kind-ordered.
  EXPECT_EQ(profile->spec_string(), "loss:0.1,churn:0.4@6");
  EXPECT_EQ(profile->find(HazardKind::kPeeringChurn)->steps, 6);
}

TEST(HazardProfiles, ParseRejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(HazardProfile::parse("warp:0.5", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(HazardProfile::parse("loss:0.2,loss:0.3", &error).has_value());
  EXPECT_FALSE(HazardProfile::parse("loss:nope", &error).has_value());
  EXPECT_FALSE(HazardProfile::parse("churn:0.3@1", &error).has_value());
}

// Normalize the declared thread-count provenance (meta field and per-stage
// worker stamps) so byte comparison checks the *results*, matching the
// repo-wide standard: thread count is recorded, never load-bearing.
RunSnapshot normalized(RunSnapshot snapshot) {
  snapshot.threads = 0;
  for (StageReport& report : snapshot.stage_reports) {
    report.threads = 0;
    report.workers = 0;
  }
  return snapshot;
}

std::string snapshot_bytes(const RunSnapshot& snapshot) {
  std::ostringstream out;
  save_snapshot(out, snapshot);
  return out.str();
}

TEST(HazardPipeline, EmptyProfileIsBitIdenticalToPreHazardEngine) {
  PipelineOptions plain;
  plain.campaign.threads = 1;
  plain.deterministic_metrics = true;

  PipelineOptions hazarded = plain;
  apply_dataplane_hazards(hazarded, HazardProfile{}, /*hazard_seed=*/7);
  ASSERT_FALSE(hazarded.campaign.traceroute.hazards.any());

  Pipeline a(small_world(), plain);
  Pipeline b(small_world(), hazarded);
  EXPECT_EQ(snapshot_bytes(a.run_snapshot()), snapshot_bytes(b.run_snapshot()));
}

TEST(HazardPipeline, DataplaneProfileIsThreadCountInvariant) {
  const auto profile =
      HazardProfile::parse("loss:0.15,mpls:0.2,rate-limit:0.35,"
                           "route-churn:0.5");
  ASSERT_TRUE(profile.has_value());

  PipelineOptions serial;
  serial.deterministic_metrics = true;
  apply_dataplane_hazards(serial, *profile, /*hazard_seed=*/7);
  serial.campaign.threads = 1;
  PipelineOptions parallel = serial;
  parallel.campaign.threads = 4;

  Pipeline a(small_world(), serial);
  Pipeline b(small_world(), parallel);
  EXPECT_EQ(snapshot_bytes(normalized(a.run_snapshot())),
            snapshot_bytes(normalized(b.run_snapshot())));
}

class DataplaneHazardTest : public ::testing::Test {
 protected:
  DataplaneHazardTest()
      : world_(small_world()), sim_(world_), forwarder_(world_, sim_) {}

  VantagePoint vp() const {
    const auto regions = world_.regions_of(CloudProvider::kAmazon);
    return VantagePoint::cloud_vm(CloudProvider::kAmazon, regions[0], "vm");
  }

  const World& world_;
  BgpSimulator sim_;
  Forwarder forwarder_;
};

TEST_F(DataplaneHazardTest, FullMplsFractionHidesEveryInteriorHop) {
  TracerouteOptions options;
  options.hazards.seed = 7;
  options.hazards.mpls_fraction = 1.0;
  TracerouteEngine engine(forwarder_, 1, options);
  int responded_hops = 0;
  int traces = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (++traces > 50) break;
    const Ipv4 dst = target.network().next(1);
    const TracerouteRecord record = engine.trace(vp(), dst);
    for (const TracerouteHop& hop : record.hops) {
      if (!hop.responded) continue;
      ++responded_hops;
      // Every interior router is spliced out, so the only address that can
      // appear is the destination host's own reply.
      EXPECT_EQ(hop.address.value(), dst.value());
    }
  }
  // The sweep must have produced at least some destination replies, or the
  // assertion above is vacuous.
  EXPECT_GT(responded_hops, 0);
}

TEST_F(DataplaneHazardTest, RateLimitSuppressionIsMonotoneInTheKnob) {
  // One engine per intensity sweeping the same target list, so each
  // router's reply counter accumulates across traces and the limiter
  // actually bites. Reply generation (and with it every RNG draw) is
  // independent of the knob; only delivery changes.
  const double intensities[] = {0.0, 0.3, 0.6, 0.9};
  std::vector<std::size_t> delivered;
  for (const double intensity : intensities) {
    TracerouteOptions options;
    options.loop_probability = 0.0;
    options.hazards.seed = 7;
    options.hazards.rate_limit = intensity;
    TracerouteEngine engine(forwarder_, 11, options);
    std::size_t responded = 0;
    int traces = 0;
    for (const Prefix& target : world_.probeable_slash24s()) {
      if (++traces > 200) break;
      const TracerouteRecord record =
          engine.trace(vp(), target.network().next(1));
      for (const TracerouteHop& hop : record.hops)
        if (hop.responded) ++responded;
    }
    delivered.push_back(responded);
  }
  for (std::size_t i = 1; i < delivered.size(); ++i)
    EXPECT_LE(delivered[i], delivered[i - 1])
        << "intensity " << intensities[i] << " delivered more replies than "
        << intensities[i - 1];
  // The hazard must actually suppress something, or the test is vacuous.
  EXPECT_LT(delivered.back(), delivered.front());
}

TEST(WorldHazards, RemotePeeringPlantsExactlyTheReportedSet) {
  World world = small_world();  // deep copy; hazards mutate it
  std::set<std::size_t> local_ixp_before;
  for (std::size_t i = 0; i < world.interconnects.size(); ++i) {
    const GroundTruthInterconnect& ic = world.interconnects[i];
    if (ic.kind == PeeringKind::kPublicIxp && !ic.remote)
      local_ixp_before.insert(i);
  }
  std::vector<double> latency_before;
  for (const Link& link : world.links) latency_before.push_back(link.latency_ms);

  const RemotePeeringPlan plan = apply_remote_peering(world, 0.5, 7);
  ASSERT_FALSE(plan.planted.empty());
  std::set<std::size_t> planted;
  for (const PlantedRemotePeer& peer : plan.planted) {
    EXPECT_TRUE(local_ixp_before.count(peer.interconnect));
    EXPECT_GE(peer.tail_ms, 2.5);
    EXPECT_LT(peer.tail_ms, 12.0);
    planted.insert(peer.interconnect);
    const GroundTruthInterconnect& ic = world.interconnects[peer.interconnect];
    EXPECT_TRUE(ic.remote);
    EXPECT_NEAR(world.links[ic.link.value].latency_ms,
                latency_before[ic.link.value] + peer.tail_ms, 1e-9);
  }
  // Untouched interconnects keep their remote flag and link latency.
  for (std::size_t i = 0; i < world.interconnects.size(); ++i) {
    if (planted.count(i)) continue;
    EXPECT_EQ(world.interconnects[i].remote,
              small_world().interconnects[i].remote);
  }
  EXPECT_TRUE(world.validate().empty()) << world.validate();

  // Replay: the same seed plants the same set.
  World again = small_world();
  const RemotePeeringPlan replay = apply_remote_peering(again, 0.5, 7);
  ASSERT_EQ(replay.planted.size(), plan.planted.size());
  for (std::size_t i = 0; i < plan.planted.size(); ++i) {
    EXPECT_EQ(replay.planted[i].interconnect, plan.planted[i].interconnect);
    EXPECT_EQ(replay.planted[i].tail_ms, plan.planted[i].tail_ms);
  }
}

TEST(WorldHazards, ChurnSequenceEmitsConsistentWorlds) {
  const LongitudinalWorlds sequence = make_churn_sequence(
      small_world(), CloudProvider::kAmazon, 0.3, 4, 7);
  ASSERT_EQ(sequence.steps.size(), 4u);
  EXPECT_EQ(sequence.steps[0].interconnects.size(),
            small_world().interconnects.size());
  ASSERT_FALSE(sequence.events.empty());
  for (const TurnoverEvent& event : sequence.events) {
    EXPECT_GE(event.step, 1);
    EXPECT_LT(event.step, 4);
    EXPECT_LT(event.interconnect, small_world().interconnects.size());
    EXPECT_NE(event.cbi, 0u);
  }
  for (const World& step : sequence.steps)
    EXPECT_TRUE(step.validate().empty()) << step.validate();
}

TEST(Scorecard, RemoteRuleRecoversEveryPlantedRemotePeer) {
  const auto profile = HazardProfile::preset("remote-peering");
  ASSERT_TRUE(profile.has_value());
  const HazardScore row = score_profile(*profile);
  ASSERT_TRUE(row.has_remote_rule);
  EXPECT_GE(row.remote_rule.planted, 1u);
  EXPECT_EQ(row.remote_rule.measured, row.remote_rule.planted);
  EXPECT_EQ(row.remote_rule.recovered, row.remote_rule.measured);
  EXPECT_EQ(row.remote_rule.false_remote, 0u);
}

TEST(Scorecard, ChurnDiffReconstructsPlantedTurnover) {
  const auto profile = HazardProfile::preset("churn");
  ASSERT_TRUE(profile.has_value());
  const ChurnRun run = run_churn_sequence(*profile);
  EXPECT_EQ(run.snapshots.size(), 4u);
  EXPECT_GE(run.score.events, 1u);
  EXPECT_GE(run.score.observable, 1u);
  EXPECT_EQ(run.score.reconstructed, run.score.observable);
}

TEST(HazardSection, AbsentByDefaultAndRoundTrips) {
  RunSnapshot plain;
  plain.seed = 3;
  const std::string plain_bytes = snapshot_bytes(plain);

  RunSnapshot stamped = plain;
  stamped.hazard_profile = "loss:0.25,mpls:0.3";
  stamped.hazard_metrics = {{"recall", 0.42}, {"precision", 0.9}};
  const std::string stamped_bytes = snapshot_bytes(stamped);
  EXPECT_GT(stamped_bytes.size(), plain_bytes.size());

  std::istringstream in(stamped_bytes);
  const auto loaded = load_snapshot(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->hazard_profile, "loss:0.25,mpls:0.3");
  // canonicalize() name-sorts the metrics on save.
  ASSERT_EQ(loaded->hazard_metrics.size(), 2u);
  EXPECT_EQ(loaded->hazard_metrics[0].first, "precision");
  // Loaded snapshots re-save byte-identically (the v3 contract).
  EXPECT_EQ(snapshot_bytes(*loaded), stamped_bytes);

  std::istringstream plain_in(plain_bytes);
  const auto plain_loaded = load_snapshot(plain_in);
  ASSERT_TRUE(plain_loaded.has_value());
  EXPECT_TRUE(plain_loaded->hazard_profile.empty());
  EXPECT_TRUE(plain_loaded->hazard_metrics.empty());
}

}  // namespace
}  // namespace cloudmap
