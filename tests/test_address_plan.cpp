// Address-plan machinery: alignment, disjointness, exhaustion.
#include <gtest/gtest.h>

#include <vector>

#include "topology/address_plan.h"

namespace cloudmap {
namespace {

TEST(PrefixPool, AllocatesAlignedDisjointBlocks) {
  PrefixPool pool(Prefix(Ipv4(10, 0, 0, 0), 16));
  std::vector<Prefix> allocated;
  for (int i = 0; i < 64; ++i) {
    const Prefix p = pool.allocate(24);
    EXPECT_EQ(p.length(), 24);
    EXPECT_EQ(p.network().value() % 256, 0u);  // aligned
    for (const Prefix& other : allocated) {
      EXPECT_FALSE(other.contains(p.network()));
      EXPECT_FALSE(p.contains(other.network()));
    }
    allocated.push_back(p);
  }
}

TEST(PrefixPool, MixedSizesStayDisjoint) {
  PrefixPool pool(Prefix(Ipv4(10, 0, 0, 0), 12));
  std::vector<Prefix> allocated;
  const std::uint8_t lengths[] = {24, 30, 16, 30, 20, 32, 24};
  for (const std::uint8_t length : lengths) {
    const Prefix p = pool.allocate(length);
    for (const Prefix& other : allocated) {
      EXPECT_FALSE(other.contains(p.network())) << p.to_string();
      EXPECT_FALSE(p.contains(other.network())) << p.to_string();
    }
    allocated.push_back(p);
  }
}

TEST(PrefixPool, ThrowsWhenExhausted) {
  PrefixPool pool(Prefix(Ipv4(10, 0, 0, 0), 24));
  pool.allocate(25);
  pool.allocate(25);
  EXPECT_THROW(pool.allocate(25), std::length_error);
}

TEST(PrefixPool, RejectsShorterThanPool) {
  PrefixPool pool(Prefix(Ipv4(10, 0, 0, 0), 24));
  EXPECT_THROW(pool.allocate(16), std::length_error);
}

TEST(AddressPlan, StandardPoolsAreDisjoint) {
  const AddressPlan plan = AddressPlan::standard();
  std::vector<Prefix> pools;
  for (int p = 1; p <= 5; ++p) pools.push_back(plan.cloud_announced[p].pool());
  pools.push_back(plan.cloud_infra.pool());
  pools.push_back(plan.cloud_private.pool());
  pools.push_back(plan.client_announced.pool());
  pools.push_back(plan.client_whois.pool());
  pools.push_back(plan.ixp_lans.pool());
  pools.push_back(plan.exchange_ports.pool());
  for (std::size_t i = 0; i < pools.size(); ++i) {
    for (std::size_t j = i + 1; j < pools.size(); ++j) {
      EXPECT_FALSE(pools[i].contains(pools[j].network()))
          << pools[i].to_string() << " vs " << pools[j].to_string();
      EXPECT_FALSE(pools[j].contains(pools[i].network()))
          << pools[i].to_string() << " vs " << pools[j].to_string();
    }
  }
}

TEST(AddressPlan, PrivatePoolIsRfc1918) {
  const AddressPlan plan = AddressPlan::standard();
  EXPECT_TRUE(plan.cloud_private.pool().network().is_private());
}

}  // namespace
}  // namespace cloudmap
