// util/: rng, stats, union-find, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/union_find.h"

namespace cloudmap {
namespace {

// ---------------- rng ----------------

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  bool differs = false;
  for (int i = 0; i < 10; ++i)
    if (a.next() != b.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  std::unordered_set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, RangeExtremeBoundsNoOverflow) {
  // hi - lo used to overflow std::int64_t for spans wider than INT64_MAX
  // (signed-overflow UB); the span is now computed in unsigned arithmetic.
  Rng rng(17);
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
  // Span of exactly INT64_MAX (still overflowed as signed before the fix).
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.range(-1, hi - 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, hi - 1);
  }
  // Degenerate single-value range.
  EXPECT_EQ(rng.range(42, 42), 42);
}

TEST(Rng, RangeStreamCompatibleWithBounded) {
  // For ordinary spans range() must keep drawing exactly what it always
  // drew: lo + bounded(span + 1) from the same state.
  Rng a(18);
  Rng b(18);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t got = a.range(3, 7);
    const std::int64_t want = 3 + static_cast<std::int64_t>(b.bounded(5));
    EXPECT_EQ(got, want);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(10, 1.5), 10u);
}

TEST(Rng, WeightedFavorsHeavyEntries) {
  Rng rng(12);
  std::vector<double> weights{1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(14);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.next(), child2.next());
}

// ---------------- stats ----------------

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, CdfAtCountsStrictlyBelow) {
  std::vector<double> sample{1.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(cdf_at(sample, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf_at(sample, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at(sample, 0.5), 0.0);
}

TEST(Stats, BoxStatsFiveNumbers) {
  const BoxStats box = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.q1, 2.0);
  EXPECT_DOUBLE_EQ(box.median, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 4.0);
  EXPECT_DOUBLE_EQ(box.max, 5.0);
  EXPECT_EQ(box.count, 5u);
}

TEST(Stats, CdfSeriesIsMonotonic) {
  Rng rng(15);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.uniform(0, 100));
  const auto series = cdf_series(sample, linspace(0, 100, 41));
  for (std::size_t i = 1; i < series.fraction.size(); ++i)
    EXPECT_GE(series.fraction[i], series.fraction[i - 1]);
  EXPECT_DOUBLE_EQ(series.fraction.back(), 1.0);
}

TEST(Stats, LinspaceAndLogspace) {
  const auto lin = linspace(0, 10, 11);
  ASSERT_EQ(lin.size(), 11u);
  EXPECT_DOUBLE_EQ(lin.front(), 0.0);
  EXPECT_DOUBLE_EQ(lin.back(), 10.0);
  const auto log = logspace(0, 3, 4);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_NEAR(log[0], 1.0, 1e-9);
  EXPECT_NEAR(log[3], 1000.0, 1e-6);
}

TEST(Stats, CdfKneeFindsSharpBend) {
  // Mass concentrated below 2.0, long sparse tail: knee near 2.
  std::vector<double> sample;
  for (int i = 0; i < 900; ++i) sample.push_back(0.002 * i);  // 0..1.8
  for (int i = 0; i < 100; ++i) sample.push_back(2.0 + i * 0.5);
  const auto series = cdf_series(sample, linspace(0, 10, 101));
  EXPECT_NEAR(cdf_knee(series), 1.9, 0.5);
}

// ---------------- union-find ----------------

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.components(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.components(), 4u);
  EXPECT_EQ(uf.component_size(0), 2u);
}

TEST(UnionFind, LargestComponent) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_EQ(uf.largest_component(), 3u);
  EXPECT_EQ(uf.components(), 3u);
}

TEST(UnionFind, RandomizedTransitivity) {
  Rng rng(16);
  UnionFind uf(100);
  for (int i = 0; i < 150; ++i)
    uf.unite(rng.bounded(100), rng.bounded(100));
  for (int i = 0; i < 200; ++i) {
    const std::size_t a = rng.bounded(100);
    const std::size_t b = rng.bounded(100);
    const std::size_t c = rng.bounded(100);
    if (uf.connected(a, b) && uf.connected(b, c)) {
      EXPECT_TRUE(uf.connected(a, c));
    }
  }
}

// ---------------- table ----------------

TEST(Table, RendersAlignedColumns) {
  TextTable table({"name", "count"});
  table.add_row({"alpha", "10"});
  table.add_row({"b", "2"});
  const std::string out = table.render("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header columns aligned: "count" starts at same offset in both rows.
  EXPECT_NE(out.find("name   count"), std::string::npos);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(TextTable::kilo(3680), "3.68k");
  EXPECT_EQ(TextTable::kilo(250), "250");
}

TEST(Table, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_NO_THROW(table.render());
}

}  // namespace
}  // namespace cloudmap
