// Forwarder: path validity, delivery, hot potato, RTT geometry.
#include <gtest/gtest.h>

#include "controlplane/bgp.h"
#include "dataplane/forwarding.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

class ForwardingTest : public ::testing::Test {
 protected:
  ForwardingTest()
      : world_(small_world()), sim_(world_), forwarder_(world_, sim_) {}

  VantagePoint amazon_vp(std::size_t index = 0) const {
    const auto regions = world_.regions_of(CloudProvider::kAmazon);
    return VantagePoint::cloud_vm(CloudProvider::kAmazon, regions[index],
                                  "vm");
  }

  const World& world_;
  BgpSimulator sim_;
  Forwarder forwarder_;
};

TEST_F(ForwardingTest, PathsAreLinkConnected) {
  // Every consecutive hop pair must share a physical link, and incoming
  // interfaces must belong to their routers.
  int delivered = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (delivered > 400) break;
    const ForwardPath path =
        forwarder_.path(amazon_vp(), target.network().next(1));
    if (path.outcome != PathOutcome::kDelivered) continue;
    ++delivered;
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      const ForwardHop& hop = path.hops[i];
      ASSERT_TRUE(hop.router.valid());
      if (hop.incoming.valid()) {
        EXPECT_EQ(world_.interface(hop.incoming).router, hop.router);
      }
      if (i == 0) continue;
      // The incoming interface's link must attach to the previous router.
      if (!hop.incoming.valid()) continue;
      const LinkId link = world_.interface(hop.incoming).link;
      if (!link.valid()) continue;
      const InterfaceId other = world_.link_other_side(link, hop.incoming);
      EXPECT_EQ(world_.interface(other).router, path.hops[i - 1].router)
          << "hop " << i;
    }
  }
  EXPECT_GT(delivered, 200);
}

TEST_F(ForwardingTest, OnewayLatencyIsMonotone) {
  int checked = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (checked > 200) break;
    const ForwardPath path =
        forwarder_.path(amazon_vp(1), target.network().next(1));
    if (path.hops.size() < 2) continue;
    ++checked;
    for (std::size_t i = 1; i < path.hops.size(); ++i)
      EXPECT_GE(path.hops[i].oneway_ms, path.hops[i - 1].oneway_ms);
  }
  EXPECT_GT(checked, 100);
}

TEST_F(ForwardingTest, FirstHopIsRegionGateway) {
  const auto regions = world_.regions_of(CloudProvider::kAmazon);
  for (const RegionId region : regions) {
    const VantagePoint vp =
        VantagePoint::cloud_vm(CloudProvider::kAmazon, region, "vm");
    const ForwardPath path = forwarder_.path(vp, Ipv4(20, 0, 0, 1));
    ASSERT_FALSE(path.hops.empty());
    EXPECT_EQ(path.hops.front().router, world_.region(region).core_router);
    EXPECT_EQ(path.hops.front().incoming, world_.region(region).vm_gateway);
  }
}

TEST_F(ForwardingTest, EgressMatchesAnInterconnectOfTheCloud) {
  int egresses = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (egresses > 200) break;
    const ForwardPath path =
        forwarder_.path(amazon_vp(), target.network().next(1));
    if (!path.egress_interconnect.valid()) continue;
    ++egresses;
    bool found = false;
    for (const GroundTruthInterconnect& ic : world_.interconnects) {
      if (ic.link == path.egress_interconnect) {
        EXPECT_EQ(ic.cloud, CloudProvider::kAmazon);
        EXPECT_FALSE(ic.private_address);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_GT(egresses, 100);
}

TEST_F(ForwardingTest, DeliversToInterconnectClientInterface) {
  // Probing a client-side interconnect address lands on its exact router.
  int checked = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    const Interface& client = world_.interface(ic.client_interface);
    const ForwardPath path = forwarder_.path(amazon_vp(), client.address);
    if (path.outcome != PathOutcome::kDelivered) continue;
    EXPECT_EQ(path.hops.back().router, client.router);
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST_F(ForwardingTest, PrivateVpisAreUnroutable) {
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (!ic.private_address) continue;
    const Interface& client = world_.interface(ic.client_interface);
    const ForwardPath path = forwarder_.path(amazon_vp(), client.address);
    EXPECT_NE(path.outcome, PathOutcome::kDelivered)
        << client.address.to_string();
  }
}

TEST_F(ForwardingTest, HotPotatoPrefersNearbyEgress) {
  // For a destination announced over several interconnects of one client,
  // different regions may pick different egress links, and each choice is
  // the nearest among the candidates for that region.
  const auto regions = world_.regions_of(CloudProvider::kAmazon);
  int multi_link_clients = 0;
  for (std::uint32_t i = 0; i < world_.ases.size(); ++i) {
    std::vector<const GroundTruthInterconnect*> ics;
    for (const GroundTruthInterconnect& ic : world_.interconnects)
      if (ic.cloud == CloudProvider::kAmazon && ic.client.value == i &&
          !ic.private_address)
        ics.push_back(&ic);
    if (ics.size() < 3) continue;
    ++multi_link_clients;
    if (world_.ases[i].announced_prefixes.empty()) continue;
    const Ipv4 dst = world_.ases[i].announced_prefixes.front().network().next(1);
    std::unordered_set<std::uint32_t> chosen;
    for (const RegionId region : regions) {
      const VantagePoint vp =
          VantagePoint::cloud_vm(CloudProvider::kAmazon, region, "vm");
      const ForwardPath path = forwarder_.path(vp, dst);
      if (path.egress_interconnect.valid())
        chosen.insert(path.egress_interconnect.value);
    }
    EXPECT_GE(chosen.size(), 1u);
    if (multi_link_clients >= 5) break;
  }
  EXPECT_GT(multi_link_clients, 0);
}

TEST_F(ForwardingTest, RttToInterfaceMatchesGeography) {
  // RTT from a region to an interface is at least the pure propagation RTT
  // between their metros (path inflation only adds).
  const auto regions = world_.regions_of(CloudProvider::kAmazon);
  const VantagePoint vp =
      VantagePoint::cloud_vm(CloudProvider::kAmazon, regions[0], "vm");
  const GeoPoint& from =
      world_.metro(world_.region(regions[0]).metro).location;
  int checked = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    const auto rtt = forwarder_.rtt_to_interface(vp, ic.client_interface);
    if (!rtt) continue;
    ++checked;
    const Interface& client = world_.interface(ic.client_interface);
    const GeoPoint& to = world_.router_location(client.router);
    EXPECT_GE(*rtt + 1e-6, rtt_ms(from, to, 1.0) * 0.99);
  }
  EXPECT_GT(checked, 30);
}

TEST_F(ForwardingTest, PublicVantageCannotReachCloudBorders) {
  // Amazon routers are not publicly reachable; unannounced infra space has
  // no public route at all.
  VantagePoint public_vp;
  for (const AutonomousSystem& as : world_.ases) {
    if (as.type == AsType::kAccess && !as.routers.empty()) {
      public_vp = VantagePoint::public_node(as.routers.front(), "vp");
      break;
    }
  }
  ASSERT_TRUE(public_vp.host_router.valid());
  int checked = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon) continue;
    EXPECT_FALSE(
        forwarder_.rtt_to_interface(public_vp, ic.cloud_interface).has_value());
    if (++checked > 50) break;
  }
}

TEST_F(ForwardingTest, PublicVantageReachesSomeClientInterfaces) {
  VantagePoint public_vp;
  for (const AutonomousSystem& as : world_.ases) {
    if (as.type == AsType::kAccess && !as.routers.empty()) {
      public_vp = VantagePoint::public_node(as.routers.front(), "vp");
      break;
    }
  }
  int reachable = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    if (forwarder_.rtt_to_interface(public_vp, ic.client_interface))
      ++reachable;
  }
  EXPECT_GT(reachable, 10);
}

}  // namespace
}  // namespace cloudmap
