// World accessor and index coverage beyond generation invariants.
#include <gtest/gtest.h>

#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

TEST(WorldAccessors, FindInterfaceRoundTrips) {
  const World& world = small_world();
  std::size_t checked = 0;
  for (std::uint32_t i = 0; i < world.interfaces.size() && checked < 500;
       ++i) {
    const Interface& iface = world.interfaces[i];
    if (iface.address.is_unspecified()) continue;
    const InterfaceId found = world.find_interface(iface.address);
    ASSERT_TRUE(found.valid());
    // Shared addresses (L2 ports, redundant sessions) resolve to the first
    // registrant, which must at least share the router.
    EXPECT_EQ(world.interface(found).router, iface.router);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
  EXPECT_FALSE(world.find_interface(Ipv4(99, 99, 99, 99)).valid());
}

TEST(WorldAccessors, OwnerOfMatchesPrefixOwner) {
  const World& world = small_world();
  for (const AutonomousSystem& as : world.ases) {
    for (const Prefix& prefix : as.announced_prefixes) {
      const AsId owner = world.owner_of(prefix.network().next(1));
      ASSERT_TRUE(owner.valid());
      // The owner is the AS itself (interconnect /30 carve-outs are from
      // block tops, .1 stays with the block owner).
      EXPECT_EQ(world.ases[owner.value].asn, as.asn);
    }
  }
  EXPECT_FALSE(world.owner_of(Ipv4(99, 0, 0, 1)).valid());
}

TEST(WorldAccessors, LinkOtherSideIsInvolutive) {
  const World& world = small_world();
  for (std::uint32_t l = 0; l < world.links.size(); ++l) {
    const Link& link = world.links[l];
    EXPECT_EQ(world.link_other_side(LinkId{l}, link.side_a), link.side_b);
    EXPECT_EQ(world.link_other_side(LinkId{l}, link.side_b), link.side_a);
  }
}

TEST(WorldAccessors, RegionsOfPartitionsByProvider) {
  const World& world = small_world();
  std::size_t total = 0;
  for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p) {
    const auto regions =
        world.regions_of(static_cast<CloudProvider>(p));
    for (const RegionId region : regions)
      EXPECT_EQ(world.region(region).provider,
                static_cast<CloudProvider>(p));
    total += regions.size();
  }
  EXPECT_EQ(total, world.regions.size());
}

TEST(WorldAccessors, CloudPrimaryIsFirstAndCloudTyped) {
  const World& world = small_world();
  for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p) {
    const auto provider = static_cast<CloudProvider>(p);
    const AsId primary = world.cloud_primary(provider);
    EXPECT_EQ(world.ases[primary.value].type, AsType::kCloud);
    EXPECT_EQ(world.ases[primary.value].cloud, provider);
    EXPECT_TRUE(world.is_cloud_as(primary, provider));
    EXPECT_FALSE(world.is_cloud_as(primary, CloudProvider::kNone));
  }
}

TEST(WorldAccessors, AsByAsnIsComplete) {
  const World& world = small_world();
  for (std::uint32_t i = 0; i < world.ases.size(); ++i) {
    const auto it = world.as_by_asn.find(world.ases[i].asn.value);
    ASSERT_NE(it, world.as_by_asn.end());
    EXPECT_EQ(it->second.value, i);
  }
}

TEST(WorldAccessors, RouterLocationMatchesMetro) {
  const World& world = small_world();
  for (std::uint32_t r = 0; r < world.routers.size(); ++r) {
    const GeoPoint& location = world.router_location(RouterId{r});
    const GeoPoint& metro =
        world.metro(world.routers[r].metro).location;
    EXPECT_DOUBLE_EQ(location.latitude_deg, metro.latitude_deg);
    EXPECT_DOUBLE_EQ(location.longitude_deg, metro.longitude_deg);
  }
}

TEST(WorldAccessors, EnumNamesAreStable) {
  EXPECT_STREQ(to_string(CloudProvider::kAmazon), "amazon");
  EXPECT_STREQ(to_string(CloudProvider::kOracle), "oracle");
  EXPECT_STREQ(to_string(AsType::kTier1), "tier1");
  EXPECT_STREQ(to_string(AsType::kEnterprise), "enterprise");
  EXPECT_STREQ(to_string(LinkKind::kVpi), "vpi");
  EXPECT_STREQ(to_string(LinkKind::kIxpLan), "ixp-lan");
  EXPECT_STREQ(to_string(PeeringKind::kPublicIxp), "public-ixp");
  EXPECT_STREQ(to_string(PeeringKind::kCrossConnect), "cross-connect");
}

}  // namespace
}  // namespace cloudmap
