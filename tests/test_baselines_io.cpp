// MAP-IT baseline, CFS facility search, and serialization round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/mapit.h"
#include "fixtures.h"
#include "io/serialize.h"
#include "pinning/cfs.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

// ---------------- MAP-IT ----------------

class MapitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Pipeline& p = small_pipeline();
    annotator_ = new Annotator(p.annotator());
    annotator_->set_snapshot(&p.snapshot_round2());
    Mapit mapit(p.world(), p.forwarder(), *annotator_);
    result_ = new MapitResult(mapit.run(CloudProvider::kAmazon));
    score_ = new MapitScore(
        score_mapit(p.world(), *result_, CloudProvider::kAmazon));
  }
  static void TearDownTestSuite() {
    delete annotator_;
    delete result_;
    delete score_;
    annotator_ = nullptr;
    result_ = nullptr;
    score_ = nullptr;
  }
  static Annotator* annotator_;
  static MapitResult* result_;
  static MapitScore* score_;
};
Annotator* MapitTest::annotator_ = nullptr;
MapitResult* MapitTest::result_ = nullptr;
MapitScore* MapitTest::score_ = nullptr;

TEST_F(MapitTest, FindsSomeEdges) {
  EXPECT_GT(result_->edges.size(), 0u);
  EXPECT_GT(result_->adjacencies_examined, result_->edges.size());
}

TEST_F(MapitTest, HasL2BlindSpot) {
  // Un-annotated adjacencies (IXP LANs, WHOIS-only space) are abundant.
  EXPECT_GT(result_->skipped_unannotated, 0u);
}

TEST_F(MapitTest, MissesIxpPeerings) {
  // §2's claim: L2 fabrics defeat MAP-IT. IXP recovery must be (near) zero
  // while cross-connect recovery is materially better.
  ASSERT_GT(score_->ixp_total, 0u);
  ASSERT_GT(score_->xconnect_total, 0u);
  EXPECT_LT(score_->ixp_rate(), 0.05);
  EXPECT_GT(score_->xconnect_rate(), score_->ixp_rate());
}

TEST_F(MapitTest, EdgesHaveDistinctAsns) {
  for (const MapitEdge& edge : result_->edges) {
    EXPECT_NE(edge.near_as, edge.far_as);
    EXPECT_FALSE(edge.near_as.is_unknown());
    EXPECT_FALSE(edge.far_as.is_unknown());
  }
}

TEST_F(MapitTest, ProcessRecordSkipsSilentHops) {
  Mapit mapit(small_pipeline().world(), small_pipeline().forwarder(),
              *annotator_);
  TracerouteRecord record;
  record.destination = Ipv4(20, 0, 0, 1);
  record.hops.push_back(TracerouteHop{Ipv4(20, 0, 0, 9), 1.0, true});
  record.hops.push_back(TracerouteHop{});  // silence breaks adjacency
  record.hops.push_back(TracerouteHop{Ipv4(20, 4, 0, 9), 2.0, true});
  MapitResult result;
  mapit.process_record(record, result);
  EXPECT_EQ(result.adjacencies_examined, 0u);
}

// ---------------- CFS ----------------

TEST(Cfs, PinsSomeFacilitiesAccurately) {
  Pipeline& p = small_pipeline();
  Annotator annotator = p.annotator();
  annotator.set_snapshot(&p.snapshot_round2());
  ConstrainedFacilitySearch::Inputs inputs;
  inputs.fabric = &p.campaign().fabric();
  inputs.annotator = &annotator;
  inputs.peeringdb = &p.peeringdb();
  inputs.world = &p.world();
  inputs.rtts = &p.mutable_rtts();
  inputs.vps = &p.campaign().vantage_points();
  ConstrainedFacilitySearch cfs(inputs);
  const CfsResult result = cfs.run();
  EXPECT_GT(result.pinned.size(), 0u);
  // Every failure class is accounted for.
  const std::size_t cbis = p.campaign().fabric().unique_cbis().size();
  EXPECT_LE(result.pinned.size() + result.no_tenant_candidates +
                result.rtt_eliminated_all + result.ambiguous +
                result.unattributed,
            cbis);

  const CfsScore score = score_cfs(p.world(), result, CloudProvider::kAmazon);
  EXPECT_GT(score.pinned, 0u);
  EXPECT_GT(score.metro_accuracy(), 0.5);
}

TEST(Cfs, CoversLessThanCoPresencePinning) {
  Pipeline& p = small_pipeline();
  Annotator annotator = p.annotator();
  annotator.set_snapshot(&p.snapshot_round2());
  ConstrainedFacilitySearch::Inputs inputs;
  inputs.fabric = &p.campaign().fabric();
  inputs.annotator = &annotator;
  inputs.peeringdb = &p.peeringdb();
  inputs.world = &p.world();
  inputs.rtts = &p.mutable_rtts();
  inputs.vps = &p.campaign().vantage_points();
  ConstrainedFacilitySearch cfs(inputs);
  const CfsResult result = cfs.run();
  // The paper's co-presence method pins far more interfaces than the
  // single-facility intersection can resolve.
  EXPECT_LT(result.pinned.size(), p.pinning().pins.size());
}

// ---------------- serialization ----------------

TEST(Serialize, RecordRoundTrip) {
  TracerouteRecord record;
  record.vantage.provider = CloudProvider::kAmazon;
  record.vantage.region = RegionId{3};
  record.destination = Ipv4(20, 1, 2, 3);
  record.status = TracerouteStatus::kCompleted;
  record.hops.push_back(TracerouteHop{Ipv4(10, 0, 0, 1), 0.5, true});
  record.hops.push_back(TracerouteHop{});
  record.hops.push_back(TracerouteHop{Ipv4(20, 1, 2, 3), 12.25, true});

  std::ostringstream out;
  write_record(out, record);
  const auto parsed = read_record(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vantage.provider, record.vantage.provider);
  EXPECT_EQ(parsed->vantage.region, record.vantage.region);
  EXPECT_EQ(parsed->destination, record.destination);
  EXPECT_EQ(parsed->status, record.status);
  ASSERT_EQ(parsed->hops.size(), record.hops.size());
  for (std::size_t i = 0; i < record.hops.size(); ++i) {
    EXPECT_EQ(parsed->hops[i].responded, record.hops[i].responded);
    EXPECT_EQ(parsed->hops[i].address, record.hops[i].address);
    if (record.hops[i].responded) {
      EXPECT_NEAR(parsed->hops[i].rtt_ms, record.hops[i].rtt_ms, 1e-9);
    }
  }
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_FALSE(read_record("").has_value());
  EXPECT_FALSE(read_record("X 1 2 3 4").has_value());
  EXPECT_FALSE(read_record("R notanumber").has_value());
  EXPECT_FALSE(read_record("R 1 0 999.999.1.1 gap *").has_value());
}

TEST(Serialize, RecordsStreamRoundTrip) {
  Pipeline& p = small_pipeline();
  TracerouteEngine engine(p.forwarder(), 55);
  const VantagePoint vp = VantagePoint::cloud_vm(
      CloudProvider::kAmazon,
      p.world().regions_of(CloudProvider::kAmazon).front(), "vm");
  std::vector<TracerouteRecord> records;
  for (int i = 0; i < 40; ++i)
    records.push_back(
        engine.trace(vp, Ipv4(20, 0, static_cast<std::uint8_t>(i), 1)));

  std::stringstream buffer;
  write_records(buffer, records);
  const auto parsed = read_records(buffer);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].destination, records[i].destination);
    EXPECT_EQ(parsed[i].hops.size(), records[i].hops.size());
  }
}

TEST(Serialize, FabricRoundTrip) {
  Pipeline& p = small_pipeline();
  const Fabric& original = p.campaign().fabric();
  std::stringstream buffer;
  write_fabric(buffer, original);
  const Fabric parsed = read_fabric(buffer);
  ASSERT_EQ(parsed.segments().size(), original.segments().size());
  for (std::size_t i = 0; i < original.segments().size(); ++i) {
    const InferredSegment& a = original.segments()[i];
    const InferredSegment& b = parsed.segments()[i];
    EXPECT_EQ(a.abi, b.abi);
    EXPECT_EQ(a.cbi, b.cbi);
    EXPECT_EQ(a.confirmation, b.confirmation);
    EXPECT_EQ(a.shifted, b.shifted);
    EXPECT_EQ(a.owner_hint, b.owner_hint);
    EXPECT_EQ(a.regions, b.regions);
    EXPECT_EQ(a.dest_slash24s, b.dest_slash24s);
  }
  EXPECT_EQ(parsed.unique_abis(), original.unique_abis());
  EXPECT_EQ(parsed.unique_cbis(), original.unique_cbis());
}

TEST(Serialize, PinsCsvHasHeaderAndRows) {
  Pipeline& p = small_pipeline();
  std::ostringstream out;
  write_pins(out, p.pinning());
  const std::string text = out.str();
  EXPECT_NE(text.find("address,metro,rule"), std::string::npos);
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(p.pinning().pins.size()));
}

}  // namespace
}  // namespace cloudmap
