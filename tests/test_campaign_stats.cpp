// Campaign bookkeeping: Table-1 stat classification priorities, walk-stat
// accumulation, and the simulated campaign clock.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "infer/campaign.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

TEST(CampaignStats, IxpFlagTakesPriorityOverSources) {
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  // Build a set with one known-IXP address and one known-BGP address.
  std::unordered_set<std::uint32_t> addresses;
  Ipv4 ixp_address;
  for (const GroundTruthInterconnect& ic : pipeline.world().interconnects) {
    if (ic.kind == PeeringKind::kPublicIxp) {
      ixp_address = pipeline.world().interface(ic.client_interface).address;
      break;
    }
  }
  ASSERT_FALSE(ixp_address.is_unspecified());
  addresses.insert(ixp_address.value());
  const auto row = Campaign::interface_stats(addresses, annotator);
  EXPECT_EQ(row.total, 1u);
  EXPECT_DOUBLE_EQ(row.ixp_fraction, 1.0);
  EXPECT_DOUBLE_EQ(row.bgp_fraction, 0.0);  // IXP wins even when annotated
}

TEST(CampaignStats, EmptySetYieldsZeroRow) {
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  const auto row = Campaign::interface_stats({}, annotator);
  EXPECT_EQ(row.total, 0u);
  EXPECT_DOUBLE_EQ(row.bgp_fraction, 0.0);
}

TEST(CampaignStats, WalkStatsAccumulate) {
  BorderWalkStats a;
  a.examined = 10;
  a.extracted = 4;
  a.loop = 1;
  BorderWalkStats b;
  b.examined = 5;
  b.extracted = 2;
  b.gap_before_border = 3;
  a.add(b);
  EXPECT_EQ(a.examined, 15u);
  EXPECT_EQ(a.extracted, 6u);
  EXPECT_EQ(a.loop, 1u);
  EXPECT_EQ(a.gap_before_border, 3u);
}

TEST(CampaignStats, DurationScalesWithProbesAndRegions) {
  RoundStats stats;
  stats.probes = 300 * 86400 * 15;  // one full day for 15 VMs at 300 pps
  EXPECT_NEAR(stats.duration_days(15), 1.0, 1e-9);
  EXPECT_NEAR(stats.duration_days(15, 600.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(RoundStats{}.duration_days(0), 0.0);
}

TEST(CampaignStats, RoundsRecordProbeCounts) {
  Pipeline& pipeline = small_pipeline();
  EXPECT_GT(pipeline.round1().probes, pipeline.round1().traceroutes);
  EXPECT_GT(pipeline.round2().probes, 0u);
  EXPECT_GT(pipeline.round1().duration_days(
                pipeline.campaign().vantage_points().size()),
            0.0);
}

TEST(CampaignStats, LeftCloudFractionBounds) {
  Pipeline& pipeline = small_pipeline();
  const double fraction = pipeline.round1().left_cloud_fraction();
  EXPECT_GE(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
  EXPECT_DOUBLE_EQ(RoundStats{}.left_cloud_fraction(), 0.0);
}

}  // namespace
}  // namespace cloudmap
