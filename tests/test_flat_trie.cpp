// FlatPrefixTrie: equivalence with the binary PrefixTrie it replaces on the
// hot lookup paths — randomized LPM cross-checks over 10k prefixes,
// covering/adjacent /24 structure, default-route fallback, batch-vs-scalar
// identity — plus the FlatHashMap probe table behind the forwarder indices.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/flat_hash.h"
#include "net/flat_prefix_trie.h"
#include "net/prefix_trie.h"
#include "util/rng.h"

namespace cloudmap {
namespace {

TEST(FlatPrefixTrie, EmptyLookups) {
  FlatPrefixTrie<int> trie;
  trie.freeze();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(Ipv4(1, 2, 3, 4)), nullptr);
  EXPECT_EQ(trie.exact(Prefix(Ipv4(1, 2, 3, 0), 24)), nullptr);
  EXPECT_FALSE(trie.lookup_entry(Ipv4(1, 2, 3, 4)).has_value());
}

TEST(FlatPrefixTrie, CoveringAndAdjacentSlash24s) {
  // A /16 covering two adjacent /24s, one of which carries a /32: the walk
  // must pick the most specific match at every level, and the adjacent /24
  // must not bleed into its neighbour.
  FlatPrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(10, 1, 0, 0), 16), 160);
  trie.insert(Prefix(Ipv4(10, 1, 5, 0), 24), 240);
  trie.insert(Prefix(Ipv4(10, 1, 6, 0), 24), 241);
  trie.insert(Prefix(Ipv4(10, 1, 5, 99), 32), 320);
  trie.freeze();

  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 4, 7)), 160);    // /16 only
  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 5, 1)), 240);    // first /24
  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 5, 99)), 320);   // the /32 inside it
  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 6, 99)), 241);   // adjacent /24
  EXPECT_EQ(*trie.lookup(Ipv4(10, 1, 7, 0)), 160);    // past both /24s
  EXPECT_EQ(trie.lookup(Ipv4(10, 2, 0, 1)), nullptr); // outside the /16

  const auto entry = trie.lookup_entry(Ipv4(10, 1, 5, 99));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first, Prefix(Ipv4(10, 1, 5, 99), 32));
  EXPECT_EQ(entry->second, 320);
}

TEST(FlatPrefixTrie, DefaultRouteFallback) {
  FlatPrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(0, 0, 0, 0), 0), 7);
  trie.insert(Prefix(Ipv4(192, 168, 0, 0), 16), 16);
  trie.freeze();
  EXPECT_EQ(*trie.lookup(Ipv4(8, 8, 8, 8)), 7);
  EXPECT_EQ(*trie.lookup(Ipv4(255, 255, 255, 255)), 7);
  EXPECT_EQ(*trie.lookup(Ipv4(192, 168, 3, 4)), 16);
}

TEST(FlatPrefixTrie, LastInsertOfSamePrefixWins) {
  FlatPrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4(10, 0, 0, 0), 8), 2);
  trie.freeze();
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.lookup(Ipv4(10, 9, 9, 9)), 2);
  EXPECT_EQ(*trie.exact(Prefix(Ipv4(10, 0, 0, 0), 8)), 2);
}

// Deterministic random prefix mix spanning every stride boundary the flat
// layout cares about (root <=16, level-1 17..24, level-2 25..32).
std::vector<Prefix> random_prefixes(Rng& rng, std::size_t count) {
  std::vector<Prefix> prefixes;
  prefixes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.range(0, 32));
    prefixes.emplace_back(Ipv4(static_cast<std::uint32_t>(rng.next())),
                          length);
  }
  return prefixes;
}

TEST(FlatPrefixTrie, RandomizedCrossCheckAgainstBinaryTrie) {
  Rng rng(0xC10Dull);
  PrefixTrie<std::uint32_t> reference;
  FlatPrefixTrie<std::uint32_t> flat;
  const std::vector<Prefix> prefixes = random_prefixes(rng, 10000);
  for (std::uint32_t i = 0; i < prefixes.size(); ++i) {
    reference.insert(prefixes[i], i);
    flat.insert(prefixes[i], i);
  }
  flat.freeze();
  ASSERT_EQ(flat.size(), reference.size());

  // Probe pure-random addresses plus the structured edges of every 50th
  // inserted prefix (network, last covered address, both neighbours).
  std::vector<Ipv4> probes;
  for (int i = 0; i < 20000; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng.next()));
  for (std::size_t i = 0; i < prefixes.size(); i += 50) {
    const std::uint32_t network = prefixes[i].network().value();
    const std::uint32_t span =
        prefixes[i].length() == 0
            ? 0xFFFFFFFFu
            : (prefixes[i].length() == 32
                   ? 0u
                   : (0xFFFFFFFFu >> prefixes[i].length()));
    probes.emplace_back(network);
    probes.emplace_back(network + span);
    probes.emplace_back(network - 1);       // just below (wraps at 0: fine)
    probes.emplace_back(network + span + 1);  // just above
  }

  for (const Ipv4 probe : probes) {
    const std::uint32_t* expected = reference.lookup(probe);
    const std::uint32_t* actual = flat.lookup(probe);
    if (expected == nullptr) {
      ASSERT_EQ(actual, nullptr) << "probe " << probe.value();
    } else {
      ASSERT_NE(actual, nullptr) << "probe " << probe.value();
      ASSERT_EQ(*actual, *expected) << "probe " << probe.value();
    }
    const auto expected_entry = reference.lookup_entry(probe);
    const auto actual_entry = flat.lookup_entry(probe);
    ASSERT_EQ(actual_entry.has_value(), expected_entry.has_value());
    if (expected_entry.has_value()) {
      // PrefixTrie reports the matched depth on the probe address; compare
      // lengths and values (the flat trie stores the canonical network).
      ASSERT_EQ(actual_entry->first.length(), expected_entry->first.length());
      ASSERT_EQ(actual_entry->second, expected_entry->second);
    }
  }
}

TEST(FlatPrefixTrie, BatchMatchesScalar) {
  Rng rng(0xBA7C4ull);
  FlatPrefixTrie<std::uint32_t> flat;
  const std::vector<Prefix> prefixes = random_prefixes(rng, 2000);
  for (std::uint32_t i = 0; i < prefixes.size(); ++i)
    flat.insert(prefixes[i], i);
  flat.freeze();

  std::vector<Ipv4> addresses;
  for (int i = 0; i < 4096; ++i)
    addresses.emplace_back(static_cast<std::uint32_t>(rng.next()));
  std::vector<const std::uint32_t*> batched(addresses.size());
  flat.lookup_batch(addresses.data(), addresses.size(), batched.data());
  for (std::size_t i = 0; i < addresses.size(); ++i)
    ASSERT_EQ(batched[i], flat.lookup(addresses[i])) << "index " << i;
}

TEST(FlatPrefixTrie, FromBinaryTriePreservesEntriesAndOrder) {
  Rng rng(0xF00Dull);
  PrefixTrie<std::uint32_t> reference;
  const std::vector<Prefix> prefixes = random_prefixes(rng, 500);
  for (std::uint32_t i = 0; i < prefixes.size(); ++i)
    reference.insert(prefixes[i], i);
  const FlatPrefixTrie<std::uint32_t> flat =
      FlatPrefixTrie<std::uint32_t>::from(reference);

  std::vector<std::pair<Prefix, std::uint32_t>> expected;
  reference.for_each([&](const Prefix& prefix, const std::uint32_t& value) {
    expected.emplace_back(prefix, value);
  });
  std::vector<std::pair<Prefix, std::uint32_t>> actual;
  flat.for_each([&](const Prefix& prefix, const std::uint32_t& value) {
    actual.emplace_back(prefix, value);
  });
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].first, expected[i].first) << "index " << i;
    EXPECT_EQ(actual[i].second, expected[i].second) << "index " << i;
  }
  for (const auto& [prefix, value] : expected) {
    const std::uint32_t* exact = flat.exact(prefix);
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(*exact, value);
  }
}

TEST(FlatHashMap, FindAfterFreeze) {
  FlatHashMap<std::uint32_t, int> map;
  map.insert(42u, 1);
  map.insert(7u, 2);
  map.insert(42u, 3);  // duplicate: first insertion wins (emplace semantics)
  map.freeze();
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(42u), nullptr);
  EXPECT_EQ(*map.find(42u), 1);
  ASSERT_NE(map.find(7u), nullptr);
  EXPECT_EQ(*map.find(7u), 2);
  EXPECT_EQ(map.find(9u), nullptr);
}

TEST(FlatHashMap, RandomizedCrossCheckAgainstLinearScan) {
  Rng rng(0x4A5Full);
  FlatHashMap<std::uint64_t, std::uint32_t> map;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    std::uint64_t key = rng.next();
    if (key == 0) key = 1;  // 0 is the reserved empty sentinel
    entries.emplace_back(key, i);
    map.insert(key, i);
  }
  map.freeze();
  for (const auto& [key, value] : entries) {
    std::uint32_t expected = 0;
    for (const auto& [k, v] : entries) {
      if (k == key) {
        expected = v;  // first insertion wins
        break;
      }
    }
    const std::uint32_t* found = map.find(key);
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(*found, expected);
  }
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t probe = rng.next() | 0x8000000000000000ull;
    bool present = false;
    for (const auto& [k, v] : entries) present = present || k == probe;
    if (!present) {
      EXPECT_EQ(map.find(probe), nullptr);
    }
  }
}

}  // namespace
}  // namespace cloudmap
