// VPI detector internals: the §7.1 target-pool construction rules.
#include <gtest/gtest.h>

#include <set>

#include "fixtures.h"
#include "vpi/detector.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class VpiPoolTest : public ::testing::Test {
 protected:
  VpiPoolTest()
      : pipeline_(small_pipeline()), annotator_(pipeline_.annotator()) {
    annotator_.set_snapshot(&pipeline_.snapshot_round2());
    pool_ = VpiDetector::target_pool(pipeline_.campaign(), annotator_);
    pool_set_.insert(pool_.begin(), pool_.end());
  }

  bool in_pool(Ipv4 address) const {
    for (const Ipv4 target : pool_)
      if (target == address) return true;
    return false;
  }

  Pipeline& pipeline_;
  Annotator annotator_;
  std::vector<Ipv4> pool_;
  std::set<Ipv4> pool_set_;
};

TEST_F(VpiPoolTest, ContainsEveryNonIxpCbiAndItsPlusOne) {
  for (const InferredSegment& segment :
       pipeline_.campaign().fabric().segments()) {
    if (annotator_.annotate(segment.cbi).ixp) continue;
    EXPECT_TRUE(in_pool(segment.cbi)) << segment.cbi.to_string();
    EXPECT_TRUE(in_pool(segment.cbi.next(1)))
        << segment.cbi.to_string() << " +1";
  }
}

TEST_F(VpiPoolTest, ContainsSampleDestinations) {
  for (const InferredSegment& segment :
       pipeline_.campaign().fabric().segments()) {
    if (annotator_.annotate(segment.cbi).ixp) continue;
    for (const Ipv4 destination : segment.sample_destinations)
      EXPECT_TRUE(in_pool(destination)) << destination.to_string();
  }
}

TEST_F(VpiPoolTest, ExcludesIxpLanCbis) {
  for (const InferredSegment& segment :
       pipeline_.campaign().fabric().segments()) {
    if (!annotator_.annotate(segment.cbi).ixp) continue;
    // The IXP CBI itself never seeds the pool (its +1 may enter via some
    // other CBI's rule, which is fine).
    bool seeded_directly = false;
    for (const InferredSegment& other :
         pipeline_.campaign().fabric().segments()) {
      if (annotator_.annotate(other.cbi).ixp) continue;
      if (other.cbi == segment.cbi) seeded_directly = true;
    }
    EXPECT_FALSE(seeded_directly);
  }
}

TEST_F(VpiPoolTest, SortedAndDeduplicated) {
  for (std::size_t i = 1; i < pool_.size(); ++i)
    EXPECT_LT(pool_[i - 1], pool_[i]);
  EXPECT_EQ(pool_set_.size(), pool_.size());
}

TEST_F(VpiPoolTest, DetectIsDeterministic) {
  Annotator annotator = pipeline_.annotator();
  annotator.set_snapshot(&pipeline_.snapshot_round2());
  VpiDetector a(pipeline_.world(), pipeline_.forwarder(), annotator, 31);
  VpiDetector b(pipeline_.world(), pipeline_.forwarder(), annotator, 31);
  const auto result_a =
      a.detect(pipeline_.campaign(), {CloudProvider::kMicrosoft});
  const auto result_b =
      b.detect(pipeline_.campaign(), {CloudProvider::kMicrosoft});
  EXPECT_EQ(result_a.vpi_cbis, result_b.vpi_cbis);
}

TEST_F(VpiPoolTest, FewerCloudsFindNoMore) {
  Annotator annotator = pipeline_.annotator();
  annotator.set_snapshot(&pipeline_.snapshot_round2());
  VpiDetector detector(pipeline_.world(), pipeline_.forwarder(), annotator,
                       31);
  const auto microsoft_only =
      detector.detect(pipeline_.campaign(), {CloudProvider::kMicrosoft});
  EXPECT_LE(microsoft_only.vpi_cbis.size(),
            pipeline_.vpis().vpi_cbis.size() + 5);
}

}  // namespace
}  // namespace cloudmap
