// Annotation chain (§3): source precedence, ASN-0 conventions, and the
// round-1/round-2 snapshot swap.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "infer/annotate.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class AnnotateTest : public ::testing::Test {
 protected:
  AnnotateTest() : pipeline_(small_pipeline()) {}
  Pipeline& pipeline_;
};

TEST_F(AnnotateTest, PrivateSpaceIsAsnZero) {
  Annotator annotator = pipeline_.annotator();
  const HopAnnotation a = annotator.annotate(Ipv4(10, 1, 2, 3));
  EXPECT_TRUE(a.asn.is_unknown());
  EXPECT_TRUE(a.org.is_unknown());
  EXPECT_EQ(a.source, AnnotationSource::kPrivate);
  EXPECT_EQ(annotator.annotate(Ipv4(100, 64, 9, 9)).source,
            AnnotationSource::kPrivate);
}

TEST_F(AnnotateTest, AnnouncedSpaceResolvesViaBgp) {
  Annotator annotator = pipeline_.annotator();
  annotator.set_snapshot(&pipeline_.snapshot_round2());
  const World& world = pipeline_.world();
  std::size_t checked = 0;
  for (const AutonomousSystem& as : world.ases) {
    if (as.type == AsType::kCloud || as.announced_prefixes.empty()) continue;
    const HopAnnotation a =
        annotator.annotate(as.announced_prefixes.front().network().next(3));
    if (a.source != AnnotationSource::kBgp) continue;  // some are IXP-ops
    EXPECT_EQ(a.asn, as.asn) << as.name;
    EXPECT_EQ(a.org, as.org);
    if (++checked > 30) break;
  }
  EXPECT_GT(checked, 10u);
}

TEST_F(AnnotateTest, WhoisOnlySpaceFallsBack) {
  Annotator annotator = pipeline_.annotator();
  annotator.set_snapshot(&pipeline_.snapshot_round2());
  const World& world = pipeline_.world();
  std::size_t checked = 0;
  for (const AutonomousSystem& as : world.ases) {
    for (const Prefix& prefix : as.whois_only_prefixes) {
      const HopAnnotation a = annotator.annotate(prefix.network().next(3));
      EXPECT_EQ(a.source, AnnotationSource::kWhois) << prefix.to_string();
      EXPECT_EQ(a.asn, as.asn);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(AnnotateTest, IxpMemberMappingTakesPrecedence) {
  Annotator annotator = pipeline_.annotator();
  annotator.set_snapshot(&pipeline_.snapshot_round2());
  const World& world = pipeline_.world();
  std::size_t via_member = 0;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kPublicIxp) continue;
    const Ipv4 lan = world.interface(ic.client_interface).address;
    const HopAnnotation a = annotator.annotate(lan);
    EXPECT_TRUE(a.ixp) << lan.to_string();
    if (a.source == AnnotationSource::kIxp) {
      EXPECT_EQ(a.asn, world.ases[ic.client.value].asn);
      ++via_member;
    }
  }
  EXPECT_GT(via_member, 10u);
}

TEST_F(AnnotateTest, SnapshotSwapChangesIntermittentPrefixes) {
  Annotator annotator = pipeline_.annotator();
  const World& world = pipeline_.world();
  std::size_t shifted = 0;
  for (const AutonomousSystem& as : world.ases) {
    for (const Prefix& prefix : as.announced_prefixes) {
      const Ipv4 probe = prefix.network().next(3);
      annotator.set_snapshot(&pipeline_.snapshot_round1());
      const AnnotationSource round1 = annotator.annotate(probe).source;
      annotator.set_snapshot(&pipeline_.snapshot_round2());
      const AnnotationSource round2 = annotator.annotate(probe).source;
      if (round1 == AnnotationSource::kWhois &&
          round2 == AnnotationSource::kBgp)
        ++shifted;
      // Never the other direction: round 2 strictly adds announcements.
      EXPECT_FALSE(round1 == AnnotationSource::kBgp &&
                   round2 == AnnotationSource::kWhois);
    }
  }
  EXPECT_GT(shifted, 0u);  // the Table 1 WHOIS→BGP mechanism
}

TEST_F(AnnotateTest, UnallocatedSpaceIsUnannotated) {
  Annotator annotator = pipeline_.annotator();
  annotator.set_snapshot(&pipeline_.snapshot_round2());
  const HopAnnotation a = annotator.annotate(Ipv4(203, 0, 113, 7));
  EXPECT_EQ(a.source, AnnotationSource::kNone);
  EXPECT_TRUE(a.asn.is_unknown());
}

TEST_F(AnnotateTest, OrgLookupMatchesAs2Org) {
  Annotator annotator = pipeline_.annotator();
  for (const AutonomousSystem& as : pipeline_.world().ases) {
    EXPECT_EQ(annotator.org_of_asn(as.asn), as.org);
  }
}

}  // namespace
}  // namespace cloudmap
