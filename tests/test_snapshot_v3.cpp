// Format-v3 snapshot hardening: the flat blob round-trips byte-identically
// through save/load/save, the zero-copy loader (io/mapped_snapshot.h)
// rejects truncation, byte flips, and pre-v3 files, and a FabricView over
// the mapping answers every backend query identically to a FabricIndex
// built from the decoded snapshot — without copying a byte out of the file.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fixtures.h"
#include "io/mapped_snapshot.h"
#include "io/snapshot.h"
#include "io/snapshot_v3.h"
#include "query/fabric_index.h"
#include "query/fabric_view.h"

namespace cloudmap {
namespace {

const RunSnapshot& shared_snapshot() {
  return testfx::small_pipeline().run_snapshot();
}

std::string v3_bytes() {
  std::ostringstream out;
  save_snapshot(out, shared_snapshot());
  return out.str();
}

// Writes `bytes` to a fresh temp file and returns its path.
std::string write_temp(const std::string& bytes, const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(SnapshotV3, SaveLoadSaveIsByteIdentical) {
  const std::string first = v3_bytes();
  std::istringstream in(first);
  std::string error;
  const auto reloaded = load_snapshot(in, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  std::ostringstream out;
  save_snapshot(out, *reloaded);
  EXPECT_EQ(first, out.str());
}

TEST(SnapshotV3, DefaultSaveIsVersion3WithFlatSection) {
  const std::string bytes = v3_bytes();
  ASSERT_GT(bytes.size(), 80u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[6]), 3u);  // version field
  // The flat blob starts at file offset 80 with the "CMF3" magic.
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data() + 80, sizeof(magic));
  EXPECT_EQ(magic, snapv3::kFlatFabricMagic);
}

TEST(SnapshotV3, MappedOpenExposesMetaAndValidBlob) {
  const std::string path = write_temp(v3_bytes(), "v3_meta.snap");
  std::string error;
  const auto mapped = MappedSnapshot::open(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  EXPECT_EQ(mapped->seed(), shared_snapshot().seed);
  EXPECT_EQ(mapped->threads(), shared_snapshot().threads);
  EXPECT_EQ(mapped->subject(),
            static_cast<std::uint8_t>(shared_snapshot().subject));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped->blob()) % 8, 0u);
  EXPECT_TRUE(snapv3::validate_flat_fabric(mapped->blob(),
                                           mapped->blob_size(), &error))
      << error;
  std::remove(path.c_str());
}

TEST(SnapshotV3, MappedOpenRejectsV1AndV2Files) {
  for (const int version : {1, 2}) {
    std::ostringstream out;
    save_snapshot(out, shared_snapshot(), version);
    const std::string path =
        write_temp(out.str(), "v3_old_" + std::to_string(version) + ".snap");
    std::string error;
    EXPECT_FALSE(MappedSnapshot::open(path, &error).has_value()) << version;
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    // The copying loader still accepts the same file.
    std::istringstream in(out.str());
    EXPECT_TRUE(load_snapshot(in, &error).has_value()) << error;
    std::remove(path.c_str());
  }
}

TEST(SnapshotV3, MappedOpenRejectsEveryTruncation) {
  const std::string good = v3_bytes();
  // Every prefix at a stride, plus all the header/table boundaries.
  std::vector<std::size_t> cuts = {0, 1, 6, 11, 12, 35, 59, 60, 79, 80,
                                   good.size() - 1};
  for (std::size_t cut = 81; cut < good.size(); cut += 97)
    cuts.push_back(cut);
  for (const std::size_t cut : cuts) {
    const std::string path =
        write_temp(good.substr(0, cut), "v3_trunc.snap");
    std::string error;
    EXPECT_FALSE(MappedSnapshot::open(path, &error).has_value())
        << "truncated at " << cut << " parsed";
    std::remove(path.c_str());
  }
}

TEST(SnapshotV3, MappedOpenRejectsByteFlipsEverywhere) {
  const std::string good = v3_bytes();
  // Flip every byte of the header and section table, then sweep the
  // payloads at a prime stride (CRC-32 catches any single-byte change, so
  // the stride only bounds runtime, not coverage class).
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 60 && i < good.size(); ++i) offsets.push_back(i);
  for (std::size_t i = 60; i < good.size(); i += 131) offsets.push_back(i);
  offsets.push_back(good.size() - 1);
  for (const std::size_t at : offsets) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0x20);
    const std::string path = write_temp(bad, "v3_flip.snap");
    EXPECT_FALSE(MappedSnapshot::open(path).has_value())
        << "flip at byte " << at << " parsed";
    std::remove(path.c_str());
  }
}

TEST(SnapshotV3, ValidateRejectsBadDirectoryWithValidCrc) {
  // Corrupt the flat blob *before* the container CRC is computed, so the
  // file-level checks pass and only validate_flat_fabric stands between a
  // hostile directory and an out-of-bounds read.
  const std::string good = v3_bytes();
  const auto blob_size = static_cast<std::uint32_t>(good.size() - 80);
  auto rewrite_u32 = [&](std::size_t blob_off, std::uint32_t value) {
    std::vector<unsigned char> blob(good.begin() + 80, good.end());
    std::memcpy(blob.data() + blob_off, &value, sizeof(value));
    return blob;
  };
  // Directory fields (io/snapshot_v3.h): blob_size at 4, segments_off at 8,
  // segment_count at 12 — each rewritten to lie about the blob's bounds.
  const std::vector<std::vector<unsigned char>> bad_blobs = {
      rewrite_u32(4, blob_size + 8),   // directory blob_size too large
      rewrite_u32(8, blob_size),       // segments offset out of range
      rewrite_u32(12, 1u << 30),       // segment count overflows blob
  };
  for (std::size_t i = 0; i < bad_blobs.size(); ++i) {
    // Re-align: validate takes the blob directly, 8-aligned.
    std::vector<std::uint64_t> aligned((bad_blobs[i].size() + 7) / 8);
    std::memcpy(aligned.data(), bad_blobs[i].data(), bad_blobs[i].size());
    std::string error;
    EXPECT_FALSE(snapv3::validate_flat_fabric(
        reinterpret_cast<const unsigned char*>(aligned.data()),
        bad_blobs[i].size(), &error))
        << "bad directory " << i << " validated";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotV3, FabricViewMatchesFabricIndexOnEveryQuery) {
  const std::string path = write_temp(v3_bytes(), "v3_view.snap");
  std::string error;
  const auto mapped = MappedSnapshot::open(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  const FabricView view(mapped->blob());
  const FabricIndex index(shared_snapshot());

  ASSERT_EQ(view.segment_count(), index.segment_count());
  for (std::uint32_t i = 0; i < view.segment_count(); ++i) {
    const SegmentFacts a = view.segment(i);
    const SegmentFacts b = index.segment(i);
    EXPECT_EQ(a.abi, b.abi) << i;
    EXPECT_EQ(a.cbi, b.cbi) << i;
    EXPECT_EQ(a.peer_asn, b.peer_asn) << i;
    EXPECT_EQ(a.peer_org, b.peer_org) << i;
    EXPECT_EQ(a.confirmation, b.confirmation) << i;
    EXPECT_EQ(a.group, b.group) << i;
    EXPECT_EQ(a.ixp, b.ixp) << i;
    EXPECT_EQ(a.vpi, b.vpi) << i;
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence) << i;
  }

  auto as_vector = [](Span32 span) {
    return std::vector<std::uint32_t>(span.begin(), span.end());
  };
  EXPECT_EQ(as_vector(view.asn_list()), as_vector(index.asn_list()));
  EXPECT_EQ(as_vector(view.vpi_list()), as_vector(index.vpi_list()));
  EXPECT_EQ(as_vector(view.metro_list()), as_vector(index.metro_list()));
  for (const std::uint32_t asn : as_vector(view.asn_list()))
    EXPECT_EQ(as_vector(view.peer_segments(asn)),
              as_vector(index.peer_segments(asn)))
        << "AS" << asn;
  EXPECT_TRUE(view.peer_segments(4294967295u).empty());
  for (const std::uint32_t metro : as_vector(view.metro_list()))
    EXPECT_EQ(as_vector(view.metro_interfaces(metro)),
              as_vector(index.metro_interfaces(metro)))
        << "metro " << metro;

  // Lookups: every interface address of every segment, plus misses.
  for (std::uint32_t i = 0; i < view.segment_count(); ++i) {
    const SegmentFacts facts = view.segment(i);
    for (const std::uint32_t raw : {facts.abi, facts.cbi}) {
      const Ipv4 address(raw);
      const auto a = view.find(address);
      const auto b = index.find(address);
      ASSERT_TRUE(a.has_value()) << address.to_string();
      ASSERT_TRUE(b.has_value()) << address.to_string();
      EXPECT_EQ(a->prefix, b->prefix);
      EXPECT_EQ(a->is_interface, b->is_interface);
      EXPECT_EQ(a->abi, b->abi);
      EXPECT_EQ(a->cbi, b->cbi);
      EXPECT_EQ(as_vector(a->segments), as_vector(b->segments));
    }
  }
  EXPECT_EQ(view.find(Ipv4(255, 255, 255, 254)).has_value(),
            index.find(Ipv4(255, 255, 255, 254)).has_value());

  for (const double min : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0})
    EXPECT_EQ(view.min_confidence_list(min), index.min_confidence_list(min))
        << "min " << min;
  for (std::size_t bin = 0; bin < view.histogram().bins.size(); ++bin)
    EXPECT_EQ(view.histogram().bins[bin], index.histogram().bins[bin]) << bin;
  EXPECT_EQ(view.pin_total(), index.pin_total());
  EXPECT_EQ(view.regional_total(), index.regional_total());
  std::remove(path.c_str());
}

TEST(SnapshotV3, FabricViewIsZeroCopyIntoTheMapping) {
  const std::string path = write_temp(v3_bytes(), "v3_zero.snap");
  std::string error;
  const auto mapped = MappedSnapshot::open(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  const FabricView view(mapped->blob());
  const auto* lo = mapped->blob();
  const auto* hi = mapped->blob() + mapped->blob_size();

  // Every span the view hands out must point INTO the mapped file, not at
  // freshly allocated copies.
  auto in_mapping = [&](Span32 span) {
    if (span.empty()) return true;
    const auto* data = reinterpret_cast<const unsigned char*>(span.values);
    return data >= lo && data + span.count * sizeof(std::uint32_t) <= hi;
  };
  EXPECT_TRUE(in_mapping(view.asn_list()));
  EXPECT_TRUE(in_mapping(view.vpi_list()));
  EXPECT_TRUE(in_mapping(view.metro_list()));
  ASSERT_FALSE(view.asn_list().empty());
  EXPECT_TRUE(in_mapping(view.peer_segments(view.asn_list()[0])));
  const SegmentFacts facts = view.segment(0);
  const auto hit = view.find(Ipv4(facts.abi));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(in_mapping(hit->segments));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cloudmap
