// WorldSpec-driven scaling (GeneratorConfig::from_spec) and the SoA/arena
// router layout: scale presets must produce valid worlds whose probeable
// target count tracks the spec's budget, synthetic metros must extend the
// curated table, and the sealed router→interface arena must agree with the
// interface table exactly.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "fixtures.h"
#include "topology/generator.h"

namespace cloudmap {
namespace {

TEST(WorldSpec, DefaultSpecApproximatesPaperShape) {
  const GeneratorConfig cfg = GeneratorConfig::from_spec(WorldSpec{});
  const GeneratorConfig paper = GeneratorConfig::paper_shape();
  EXPECT_EQ(cfg.tier1_count, paper.tier1_count);
  EXPECT_EQ(cfg.tier2_count, paper.tier2_count);
  EXPECT_EQ(cfg.metro_count, paper.metro_count);
  EXPECT_EQ(cfg.client_prefix_shift, 0);
  EXPECT_EQ(cfg.max_intra_as_mesh, 0);
  // The access/enterprise split is solved from the target budget rather
  // than copied, so it lands near — not exactly on — the paper mix.
  EXPECT_NEAR(cfg.access_count, paper.access_count, 15);
  EXPECT_NEAR(cfg.enterprise_count, paper.enterprise_count, 15);
}

TEST(WorldSpec, ScaledWorldGeneratesValidatesAndMeetsBudget) {
  WorldSpec spec;
  spec.seed = 7;
  spec.total_ases = 4000;
  spec.targets_per_region = 1200;
  const GeneratorConfig cfg = GeneratorConfig::from_spec(spec);

  // Scale knobs engage: synthetic metros beyond the curated table, longer
  // client prefixes, capped intra-AS mesh.
  EXPECT_GT(cfg.metro_count, 50);
  EXPECT_GT(cfg.client_prefix_shift, 0);
  EXPECT_GT(cfg.max_intra_as_mesh, 0);

  const World world = generate_world(cfg);
  EXPECT_EQ(world.validate(), "");
  EXPECT_EQ(world.metros.size(), static_cast<std::size_t>(cfg.metro_count));

  // Synthetic metro names/codes stay unique (DNS hints key on the code).
  std::unordered_set<std::string> codes;
  for (const Metro& metro : world.metros)
    EXPECT_TRUE(codes.insert(metro.airport_code).second)
        << "duplicate airport code " << metro.airport_code;

  // The world carries the requested client ASes (plus the cloud ASes and
  // one IXP-operator pseudo-AS per IXP).
  const std::size_t client_ases = static_cast<std::size_t>(
      cfg.tier1_count + cfg.tier2_count + cfg.access_count +
      cfg.enterprise_count + cfg.content_count + cfg.cdn_count);
  EXPECT_NEAR(static_cast<double>(client_ases), spec.total_ases,
              spec.total_ases * 0.02);
  EXPECT_GE(world.ases.size(), client_ases);

  // Probeable /24 targets track the budget (a target, not a guarantee —
  // block-count draws are random, so allow a generous band).
  const double budget =
      static_cast<double>(spec.targets_per_region) * cfg.amazon_regions;
  const double targets = static_cast<double>(world.probeable_slash24s().size());
  EXPECT_GT(targets, budget * 0.6);
  EXPECT_LT(targets, budget * 1.6);
}

TEST(WorldSpec, RouterInterfaceArenaMatchesInterfaceTable) {
  const World& world = testfx::small_world();
  // Every interface appears in exactly its router's span, in global index
  // order — the exact contract seal() documents.
  std::vector<std::vector<std::uint32_t>> expected(world.routers.size());
  for (std::uint32_t i = 0; i < world.interfaces.size(); ++i)
    expected[world.interfaces[i].router.value].push_back(i);
  ASSERT_EQ(world.router_iface_pool.size(), world.interfaces.size());
  for (std::uint32_t r = 0; r < world.routers.size(); ++r) {
    const auto view = world.router_interfaces(RouterId{r});
    ASSERT_EQ(view.size(), expected[r].size()) << "router " << r;
    for (std::uint32_t k = 0; k < view.size(); ++k)
      EXPECT_EQ(view[k].value, expected[r][k]) << "router " << r;
  }
}

TEST(WorldSpec, ExtraUplinkArenaPointsAtRealLinks) {
  const World& world = testfx::small_world();
  std::size_t spanned = 0;
  for (const Router& router : world.routers) {
    for (const LinkId link : world.router_extra_uplinks(router)) {
      ASSERT_TRUE(link.valid());
      ASSERT_LT(link.value, world.links.size());
      ++spanned;
    }
  }
  EXPECT_EQ(spanned, world.router_uplink_pool.size());
}

}  // namespace
}  // namespace cloudmap
