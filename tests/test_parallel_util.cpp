// The thread-pool / parallel-for utility: every item runs exactly once,
// results land in item order, exceptions propagate, and the degenerate
// shapes (empty range, single item, more threads than items) behave.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.h"

namespace cloudmap {
namespace {

TEST(ParallelUtil, ResolveThreadsHonorsExplicitCounts) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_GE(resolve_threads(0), 1u);   // hardware_concurrency fallback
  EXPECT_GE(resolve_threads(-3), 1u);  // negatives mean "auto" too
}

TEST(ParallelUtil, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const std::vector<int> out =
      parallel_transform(0, 4, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelUtil, EveryItemRunsExactlyOnce) {
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> counts(kItems);
  parallel_for(kItems, 8, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelUtil, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> counts(3);
  parallel_for(3, 64, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelUtil, TransformKeepsItemOrder) {
  const std::vector<std::size_t> squares =
      parallel_transform(100, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelUtil, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(16, 1, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);  // no data race possible: inline execution
}

TEST(ParallelUtil, ExceptionsPropagate) {
  EXPECT_THROW(parallel_for(32, 4,
                            [](std::size_t i) {
                              if (i == 17) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // Inline path too.
  EXPECT_THROW(parallel_for(4, 1,
                            [](std::size_t i) {
                              if (i == 2) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelUtil, LowestIndexExceptionWins) {
  try {
    parallel_for(64, 8, [](std::size_t i) {
      if (i == 5 || i == 60) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "5");
  }
}

TEST(ParallelUtil, PoolStatsAccountForEveryItem) {
  PoolStats stats;
  parallel_for(
      64, 4,
      [](std::size_t i) {
        volatile std::size_t sink = 0;
        for (std::size_t k = 0; k < 1000 * (i % 3 + 1); ++k) sink = sink + k;
      },
      &stats);
  EXPECT_EQ(stats.items, 64u);
  EXPECT_GE(stats.workers, 1u);
  EXPECT_LE(stats.workers, 4u);
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_GT(stats.busy_ns, 0u);
  EXPECT_GT(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0 + 1e-9);
}

TEST(ParallelUtil, PoolStatsInlinePathCountsBusyAsWall) {
  PoolStats stats;
  parallel_for(8, 1, [](std::size_t) {}, &stats);
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.items, 8u);
  EXPECT_EQ(stats.busy_ns, stats.wall_ns);
}

TEST(ParallelUtil, PoolStatsAreResetNotAccumulated) {
  PoolStats stats;
  parallel_for(32, 2, [](std::size_t) {}, &stats);
  const std::uint64_t first_items = stats.items;
  parallel_for(5, 2, [](std::size_t) {}, &stats);
  EXPECT_EQ(first_items, 32u);
  EXPECT_EQ(stats.items, 5u);  // zeroed at the start of each call
}

TEST(ParallelUtil, NullStatsPointerIsFine) {
  std::atomic<int> calls{0};
  parallel_for(16, 4, [&](std::size_t) { ++calls; }, nullptr);
  EXPECT_EQ(calls.load(), 16);
  const std::vector<int> out =
      parallel_transform(10, 4, [](std::size_t i) { return int(i); }, nullptr);
  EXPECT_EQ(out.size(), 10u);
}

TEST(ParallelUtil, RemainingItemsStillRunAfterAThrow) {
  std::atomic<int> calls{0};
  try {
    parallel_for(100, 4, [&](std::size_t i) {
      ++calls;
      if (i == 0) throw std::runtime_error("early");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(calls.load(), 100);
}

}  // namespace
}  // namespace cloudmap
