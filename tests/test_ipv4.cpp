// IPv4 value-type behaviour: formatting, parsing, classification.
#include <gtest/gtest.h>

#include "net/ipv4.h"

namespace cloudmap {
namespace {

TEST(Ipv4, RoundTripsDottedQuad) {
  const Ipv4 address(192, 168, 3, 44);
  EXPECT_EQ(address.to_string(), "192.168.3.44");
  const auto parsed = Ipv4::parse("192.168.3.44");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, address);
}

TEST(Ipv4, OctetOrderIsBigEndianInValue) {
  EXPECT_EQ(Ipv4(1, 2, 3, 4).value(), 0x01020304u);
}

TEST(Ipv4, NextSteps) {
  EXPECT_EQ(Ipv4(10, 0, 0, 255).next().to_string(), "10.0.1.0");
  EXPECT_EQ(Ipv4(10, 0, 0, 1).next(3).to_string(), "10.0.0.4");
}

struct ParseCase {
  const char* text;
  bool valid;
};
class Ipv4Parse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(Ipv4Parse, HandlesEdgeCases) {
  EXPECT_EQ(Ipv4::parse(GetParam().text).has_value(), GetParam().valid)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv4Parse,
    ::testing::Values(
        ParseCase{"0.0.0.0", true}, ParseCase{"255.255.255.255", true},
        ParseCase{"1.2.3.4", true}, ParseCase{"01.2.3.4", true},
        ParseCase{"256.1.1.1", false}, ParseCase{"1.2.3", false},
        ParseCase{"1.2.3.4.5", false}, ParseCase{"", false},
        ParseCase{"a.b.c.d", false}, ParseCase{"1..2.3", false},
        ParseCase{"1.2.3.", false}, ParseCase{".1.2.3", false},
        ParseCase{"1.2.3.1000", false}, ParseCase{"1.2.3.4 ", false}));

TEST(Ipv4, PrivateSpaceClassification) {
  EXPECT_TRUE(Ipv4(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4(10, 255, 255, 255).is_private());
  EXPECT_TRUE(Ipv4(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4(172, 32, 0, 1).is_private());
  EXPECT_FALSE(Ipv4(172, 15, 255, 255).is_private());
  EXPECT_TRUE(Ipv4(192, 168, 100, 1).is_private());
  EXPECT_FALSE(Ipv4(192, 169, 0, 1).is_private());
  EXPECT_FALSE(Ipv4(11, 0, 0, 1).is_private());
}

TEST(Ipv4, SharedSpaceClassification) {
  EXPECT_TRUE(Ipv4(100, 64, 0, 1).is_shared());
  EXPECT_TRUE(Ipv4(100, 127, 255, 255).is_shared());
  EXPECT_FALSE(Ipv4(100, 128, 0, 0).is_shared());
  EXPECT_FALSE(Ipv4(100, 63, 255, 255).is_shared());
}

TEST(Ipv4, MulticastAndReserved) {
  EXPECT_TRUE(Ipv4(224, 0, 0, 1).is_multicast_or_reserved());
  EXPECT_TRUE(Ipv4(240, 0, 0, 1).is_multicast_or_reserved());
  EXPECT_TRUE(Ipv4(255, 255, 255, 255).is_multicast_or_reserved());
  EXPECT_FALSE(Ipv4(223, 255, 255, 255).is_multicast_or_reserved());
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_LT(Ipv4(1, 0, 0, 1), Ipv4(1, 0, 1, 0));
}

}  // namespace
}  // namespace cloudmap
