// Adaptive re-probing end to end: deterministic retry/backoff streams,
// zero-loss identity, loss-sweep hardening, retry accounting, and the
// per-segment confidence plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "core/pipeline.h"
#include "dataplane/reprobe.h"
#include "fixtures.h"
#include "infer/confidence.h"
#include "io/serialize.h"
#include "io/snapshot.h"
#include "util/rng.h"

namespace cloudmap {
namespace {

using testfx::small_world;

// ---------------- policy units ----------------

TEST(ReprobePolicy, DisabledByDefault) {
  const ReprobePolicy policy;
  EXPECT_EQ(policy.budget, 0);
  EXPECT_FALSE(policy.enabled());
  EXPECT_TRUE(ReprobePolicy{.budget = 1}.enabled());
}

TEST(ReprobePolicy, ClampedSanitizesEveryField) {
  ReprobePolicy wild;
  wild.budget = 99;
  wild.backoff_base_ticks = ~std::uint64_t{0};
  wild.backoff_multiplier = 1e9;
  wild.backoff_jitter = 2.0;
  const ReprobePolicy high = wild.clamped();
  EXPECT_EQ(high.budget, ReprobePolicy::kMaxBudget);
  EXPECT_LE(high.backoff_base_ticks, std::uint64_t{1} << 32);
  EXPECT_DOUBLE_EQ(high.backoff_multiplier, 64.0);
  EXPECT_DOUBLE_EQ(high.backoff_jitter, 0.99);

  ReprobePolicy negative;
  negative.budget = -3;
  negative.backoff_multiplier = 0.25;
  negative.backoff_jitter = -1.0;
  const ReprobePolicy low = negative.clamped();
  EXPECT_EQ(low.budget, 0);
  EXPECT_DOUBLE_EQ(low.backoff_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(low.backoff_jitter, 0.0);

  // NaN takes the lower bound instead of propagating.
  ReprobePolicy poisoned;
  poisoned.backoff_multiplier = std::nan("");
  EXPECT_DOUBLE_EQ(poisoned.clamped().backoff_multiplier, 1.0);
}

TEST(ReprobePolicy, BackoffIsDeterministicAndExponential) {
  ReprobePolicy policy;
  policy.backoff_base_ticks = 100;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter = 0.25;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    Rng a(77);
    Rng b(77);
    const std::uint64_t ticks = policy.backoff_ticks(attempt, a);
    EXPECT_EQ(ticks, policy.backoff_ticks(attempt, b));  // same stream, same wait
    // Jittered around base * multiplier^(k-1) by at most the jitter factor.
    const double nominal = 100.0 * std::pow(2.0, attempt - 1);
    EXPECT_GE(static_cast<double>(ticks), nominal * 0.74);
    EXPECT_LE(static_cast<double>(ticks), nominal * 1.26);
  }
}

TEST(ReprobePolicy, BackoffIsCappedForExtremeAttempts) {
  ReprobePolicy policy;
  policy.backoff_base_ticks = std::uint64_t{1} << 32;
  policy.backoff_multiplier = 64.0;
  policy.backoff_jitter = 0.0;
  Rng rng(1);
  // 64^15 * 2^32 would overflow anything; the cap keeps the clock finite.
  EXPECT_EQ(policy.backoff_ticks(16, rng), std::uint64_t{1000000000000000});
}

TEST(ReprobePolicy, StreamSeedsNeverCollide) {
  const std::uint64_t chunk_seed = 0x1234abcd5678ef00ULL;
  std::set<std::uint64_t> seeds;
  for (std::uint64_t target = 0; target < 64; ++target)
    for (int attempt = 1; attempt <= 4; ++attempt)
      seeds.insert(reprobe_stream_seed(chunk_seed, target, attempt));
  EXPECT_EQ(seeds.size(), 64u * 4u);
  // Deterministic: same inputs, same stream.
  EXPECT_EQ(reprobe_stream_seed(chunk_seed, 7, 2),
            reprobe_stream_seed(chunk_seed, 7, 2));
  // And distinct from the chunk's own primary stream seed.
  EXPECT_EQ(seeds.count(chunk_seed), 0u);
}

// ---------------- confidence units ----------------

TEST(Confidence, ScoreIsBoundedAndMonotoneInEvidence) {
  for (const Confirmation c :
       {Confirmation::kUnconfirmed, Confirmation::kIxpClient,
        Confirmation::kHybrid, Confirmation::kReachability,
        Confirmation::kAliasRelabel}) {
    for (std::uint32_t n : {0u, 1u, 2u, 8u, 1000u}) {
      const double score = confidence_score(n, 2, 1.0, confirmation_weight(c));
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
  }
  // More observations, more rounds, denser hops, stronger heuristics: each
  // axis can only raise the score.
  const double w = confirmation_weight(Confirmation::kHybrid);
  EXPECT_LT(confidence_score(1, 1, 0.5, w), confidence_score(4, 1, 0.5, w));
  EXPECT_LT(confidence_score(4, 1, 0.5, w), confidence_score(4, 2, 0.5, w));
  EXPECT_LT(confidence_score(4, 2, 0.5, w), confidence_score(4, 2, 0.9, w));
  EXPECT_LT(confidence_score(4, 2, 0.9,
                             confirmation_weight(Confirmation::kUnconfirmed)),
            confidence_score(4, 2, 0.9,
                             confirmation_weight(Confirmation::kIxpClient)));
}

TEST(Confidence, SegmentConfidenceAggregatesTrackedEvidence) {
  InferredSegment segment;
  segment.confirmation = Confirmation::kIxpClient;
  segment.observations = 4;
  segment.rounds_mask = 0b11;  // seen in rounds 1 and 2
  segment.hop_density_sum = 3.2;
  const SegmentConfidence conf = segment_confidence(segment);
  EXPECT_EQ(conf.observations, 4u);
  EXPECT_EQ(conf.rounds_seen, 2u);
  EXPECT_DOUBLE_EQ(conf.hop_density, 0.8);
  EXPECT_DOUBLE_EQ(conf.heuristic_weight, 1.0);
  EXPECT_GT(conf.score, 0.8);  // strong on every axis
  EXPECT_LE(conf.score, 1.0);

  // A never-observed segment scores only its heuristic weight share.
  const InferredSegment empty;
  const SegmentConfidence zero = segment_confidence(empty);
  EXPECT_EQ(zero.observations, 0u);
  EXPECT_DOUBLE_EQ(zero.hop_density, 0.0);
  EXPECT_LT(zero.score, 0.1);
}

// ---------------- campaign-level properties ----------------

// A copy of the shared small world in which every router always answers.
// With host_response forced to 1 and loop/queueing artifacts off, every
// probe outcome is deterministic: the only failed traces are unrouted
// targets and silent-by-policy routers, and a retry reproduces them
// identically. Re-probing therefore cannot change the inferred fabric.
const World& zero_loss_world() {
  static const World world = [] {
    GeneratorConfig config = GeneratorConfig::small();
    config.seed = 42;  // same world as small_world(), regenerated (World is
                       // move-only), then made fully responsive
    World fresh = generate_world(config);
    for (Router& router : fresh.routers) router.response_probability = 1.0;
    return fresh;
  }();
  return world;
}

PipelineOptions zero_loss_options(int threads, int budget) {
  PipelineOptions options;
  options.metrics = false;
  options.campaign.threads = threads;
  options.campaign.reprobe.budget = budget;
  options.campaign.traceroute.host_response = 1.0;
  options.campaign.traceroute.loop_probability = 0.0;
  options.campaign.traceroute.queueing_probability = 0.0;
  return options;
}

std::string round1_fabric_text(const World& world,
                               const PipelineOptions& options) {
  Pipeline pipeline(world, options);
  pipeline.run_until(StageId::kRound1);
  std::ostringstream out;
  write_fabric(out, pipeline.campaign().fabric());
  return out.str();
}

TEST(Reprobe, ZeroLossRetriesNeverChangeTheFabric) {
  const std::string baseline =
      round1_fabric_text(zero_loss_world(), zero_loss_options(1, 0));
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(round1_fabric_text(zero_loss_world(), zero_loss_options(1, 3)),
            baseline);
  EXPECT_EQ(round1_fabric_text(zero_loss_world(), zero_loss_options(4, 0)),
            baseline);
  EXPECT_EQ(round1_fabric_text(zero_loss_world(), zero_loss_options(4, 3)),
            baseline);
}

PipelineOptions lossy_options(int threads, int budget, double scale) {
  PipelineOptions options;
  options.metrics = false;
  options.campaign.threads = threads;
  options.campaign.reprobe.budget = budget;
  options.campaign.traceroute.response_scale = scale;
  return options;
}

std::set<std::pair<std::uint32_t, std::uint32_t>> round1_segments(
    Pipeline& pipeline) {
  pipeline.run_until(StageId::kRound1);
  std::set<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const InferredSegment& segment : pipeline.campaign().fabric().segments())
    out.insert({segment.abi.value(), segment.cbi.value()});
  return out;
}

TEST(Reprobe, RetryResultsAreThreadCountInvariant) {
  Pipeline one(small_world(), lossy_options(1, 2, 0.6));
  Pipeline four(small_world(), lossy_options(4, 2, 0.6));
  EXPECT_EQ(round1_segments(one), round1_segments(four));
  const RoundStats& a = one.round1();
  const RoundStats& b = four.round1();
  EXPECT_EQ(a.retried_targets, b.retried_targets);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.backoff_waits, b.backoff_waits);
  EXPECT_EQ(a.backoff_ticks, b.backoff_ticks);
  EXPECT_EQ(a.recovered_targets, b.recovered_targets);
  EXPECT_GT(a.retried_targets, 0u);
  EXPECT_GT(a.recovered_targets, 0u);
}

TEST(Reprobe, MoreBudgetOnlyAddsEvidence) {
  // The attempt sequence for a target is a prefix across budgets, so a
  // bigger budget recovers a superset of targets and infers a superset of
  // segments.
  Pipeline b0(small_world(), lossy_options(2, 0, 0.6));
  Pipeline b1(small_world(), lossy_options(2, 1, 0.6));
  Pipeline b3(small_world(), lossy_options(2, 3, 0.6));
  const auto s0 = round1_segments(b0);
  const auto s1 = round1_segments(b1);
  const auto s3 = round1_segments(b3);
  for (const auto& segment : s0) EXPECT_EQ(s1.count(segment), 1u);
  for (const auto& segment : s1) EXPECT_EQ(s3.count(segment), 1u);
  EXPECT_EQ(b0.round1().retries, 0u);
  EXPECT_EQ(b0.round1().recovered_targets, 0u);
  EXPECT_EQ(b1.round1().retried_targets, b3.round1().retried_targets);
  EXPECT_GE(b3.round1().recovered_targets, b1.round1().recovered_targets);
  EXPECT_GT(b1.round1().recovered_targets, 0u);
}

TEST(Reprobe, LossSweepIsMonotoneAndFabricatesNothing) {
  // Every extracted segment demands a fully-responding prefix up to the
  // border, so even heavy loss can only *miss* segments, never invent
  // them: everything found under loss must also be found by the
  // fully-responsive campaign over the same world.
  Pipeline complete(zero_loss_world(), zero_loss_options(2, 0));
  const auto truth = round1_segments(complete);

  std::uint64_t previous_retried = 0;
  for (const double scale : {1.0, 0.75, 0.5}) {
    Pipeline lossy(small_world(), lossy_options(2, 2, scale));
    const auto segments = round1_segments(lossy);
    for (const auto& segment : segments)
      EXPECT_EQ(truth.count(segment), 1u)
          << "fabricated segment at scale " << scale;
    const RoundStats& stats = lossy.round1();
    EXPECT_GE(stats.retried_targets, previous_retried)
        << "loss went up but fewer targets failed (scale " << scale << ")";
    previous_retried = stats.retried_targets;
    EXPECT_EQ(stats.backoff_waits, stats.retries);
    EXPECT_GT(stats.backoff_ticks, stats.backoff_waits);  // base is 64 ticks
  }
}

TEST(Reprobe, RetryCountersReachTheMetricsRegistry) {
  PipelineOptions options = lossy_options(2, 2, 0.6);
  options.metrics = true;
  Pipeline pipeline(small_world(), options);
  pipeline.run_until(StageId::kRound1);
  const RoundStats& stats = pipeline.round1();
  const MetricsRegistry& metrics = pipeline.metrics();
  EXPECT_EQ(metrics.counter_value("campaign.retry.attempts"), stats.retries);
  EXPECT_EQ(metrics.counter_value("campaign.retry.backoff_waits"),
            stats.backoff_waits);
  EXPECT_EQ(metrics.counter_value("campaign.retry.backoff_ticks"),
            stats.backoff_ticks);
  EXPECT_EQ(metrics.counter_value("campaign.retry.recovered_targets"),
            stats.recovered_targets);
  EXPECT_GT(stats.retries, 0u);
  // Backoff waits occupy probe slots: the simulated campaign stretches.
  RoundStats without = stats;
  without.backoff_ticks = 0;
  EXPECT_GT(stats.duration_days(8), without.duration_days(8));
}

// ---------------- deterministic-metrics byte identity ----------------

TEST(Reprobe, DeterministicMetricsSnapshotIsByteIdentical) {
  PipelineOptions options;
  options.campaign.threads = 2;
  options.deterministic_metrics = true;
  const auto snapshot_bytes = [&options] {
    Pipeline pipeline(small_world(), options);
    std::ostringstream out;
    save_snapshot(out, pipeline.run_snapshot());
    return out.str();
  };
  const std::string first = snapshot_bytes();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, snapshot_bytes());
}

// ---------------- confidence end to end ----------------

TEST(Reprobe, EverySnapshotSegmentCarriesConfidence) {
  Pipeline pipeline(small_world(), lossy_options(2, 2, 0.8));
  const RunSnapshot& snap = pipeline.run_snapshot();
  ASSERT_FALSE(snap.segments.empty());
  for (const SnapshotSegment& segment : snap.segments) {
    EXPECT_GE(segment.observations, 1u);
    EXPECT_NE(segment.rounds_mask, 0u);
    EXPECT_GE(segment.hop_density, 0.0);
    EXPECT_LE(segment.hop_density, 1.0);
    EXPECT_GT(segment.confidence, 0.0);
    EXPECT_LE(segment.confidence, 1.0);
  }
}

}  // namespace
}  // namespace cloudmap
