// Corrupt-input hardening for the text serializers (io/serialize.h): a
// damaged line is skipped whole — never a throw, never a half-applied
// segment — and the write_pins/read_pins pair round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "io/serialize.h"

namespace cloudmap {
namespace {

// --- traceroute records ----------------------------------------------------

TEST(SerializeCorrupt, ReadRecordRejectsMalformedLines) {
  // Baseline sanity: the well-formed line parses.
  ASSERT_TRUE(read_record("R 0 1 10.0.0.1 completed 10.0.0.2:1.5,*"));

  const char* bad[] = {
      "R",                                      // truncated
      "R 0 1 10.0.0.1",                         // no status
      "X 0 1 10.0.0.1 completed",               // wrong tag
      "R 0 1 10.0.0.1 finished",                // unknown status
      "R 0 1 not-an-ip completed",              // bad destination
      "R -1 1 10.0.0.1 completed",              // provider below range
      "R 99 1 10.0.0.1 completed",              // provider past the enum
      "R 0 1 10.0.0.1 completed 10.0.0.2",      // hop without rtt
      "R 0 1 10.0.0.1 completed bad-ip:1.5",    // bad hop address
      "R 0 1 10.0.0.1 completed 10.0.0.2:abc",  // non-numeric rtt
      "R 0 1 10.0.0.1 completed 10.0.0.2:1.5x",  // trailing junk in rtt
      "R 0 1 10.0.0.1 completed 10.0.0.2:-2.0",  // negative rtt
  };
  for (const char* line : bad)
    EXPECT_FALSE(read_record(line).has_value()) << line;
}

TEST(SerializeCorrupt, ReadRecordsSkipsBadLinesKeepsGood) {
  std::stringstream in;
  in << "R 0 1 10.0.0.1 completed 10.0.0.2:1.5\n"
     << "R 99 1 10.0.0.1 completed\n"
     << "R 0 1 10.0.0.3 gap *\n";
  const auto records = read_records(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].destination.to_string(), "10.0.0.1");
  EXPECT_EQ(records[1].destination.to_string(), "10.0.0.3");
}

// --- fabric segments -------------------------------------------------------

TEST(SerializeCorrupt, ReadFabricSkipsCorruptLinesWhole) {
  std::stringstream in;
  in << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 1|2 20.0.0.0\n"  // good
     << "S 10.0.0.3 20.0.0.4 0.0.0.0 0.0.0.0 1 0 0\n"        // truncated
     << "S 10.0.0.5 20.0.0.6 0.0.0.0 0.0.0.0 1 9 0 0 - -\n"  // confirmation 9
     << "S 10.0.0.7 20.0.0.8 0.0.0.0 0.0.0.0 1 0 5 0 - -\n"  // shifted 5
     << "S 10.0.0.9 20.0.0.10 0.0.0.0 0.0.0.0 1 0 0 0 1|x - \n"  // bad region
     << "S 10.0.0.11 20.0.0.12 0.0.0.0 0.0.0.0 1 0 0 0 - junk|1\n"  // bad dest
     << "S bad-abi 20.0.0.14 0.0.0.0 0.0.0.0 1 0 0 0 - -\n"  // bad address
     << "S 10.0.0.15 20.0.0.16 0.0.0.0 0.0.0.0 1 4 1 64512 3 30.0.0.0\n";
  const Fabric fabric = read_fabric(in);
  ASSERT_EQ(fabric.segments().size(), 2u);
  EXPECT_EQ(fabric.segments()[0].abi.to_string(), "10.0.0.1");
  EXPECT_EQ(fabric.segments()[0].regions.size(), 2u);
  const InferredSegment& last = fabric.segments()[1];
  EXPECT_EQ(last.abi.to_string(), "10.0.0.15");
  EXPECT_EQ(last.confirmation, Confirmation::kAliasRelabel);
  EXPECT_TRUE(last.shifted);
  EXPECT_EQ(last.owner_hint, Asn{64512});
  EXPECT_EQ(last.dest_slash24s.count(Ipv4(30, 0, 0, 0).value()), 1u);
}

TEST(SerializeCorrupt, ReadFabricNeverThrowsOnNumericGarbage) {
  // Tokens that would make std::stoul / std::stod throw or misparse.
  std::stringstream in;
  in << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 99999999999999999999 -\n"
     << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 +3 -\n"
     << "S 10.0.0.1 20.0.0.2 0.0.0.0 0.0.0.0 1 0 0 0 3garbage -\n";
  EXPECT_NO_THROW({
    const Fabric fabric = read_fabric(in);
    EXPECT_TRUE(fabric.segments().empty());
  });
}

TEST(SerializeCorrupt, FabricRoundTripSurvivesCorruptNeighbors) {
  // A saved fabric re-reads identically even with garbage spliced between
  // the lines.
  Fabric fabric;
  CandidateSegment candidate;
  candidate.abi = Ipv4(10, 1, 0, 1);
  candidate.cbi = Ipv4(198, 51, 100, 1);
  fabric.add_segment(candidate, 1);
  std::stringstream buffer;
  write_fabric(buffer, fabric);
  std::stringstream spliced;
  spliced << "S corrupted\n" << buffer.str() << "S also corrupted 1 2 3\n";
  const Fabric reread = read_fabric(spliced);
  ASSERT_EQ(reread.segments().size(), 1u);
  EXPECT_EQ(reread.segments()[0].abi, candidate.abi);
  EXPECT_EQ(reread.segments()[0].cbi, candidate.cbi);
}

// --- pinning results -------------------------------------------------------

TEST(SerializeCorrupt, WritePinsReadPinsRoundTrip) {
  PinningResult original;
  Pin anchor;
  anchor.metro = MetroId{3};
  anchor.rule = PinRule::kAnchor;
  anchor.anchor_source = AnchorSource::kDns;
  anchor.round = 0;
  original.pins[Ipv4(10, 0, 0, 1).value()] = anchor;
  Pin propagated;
  propagated.metro = MetroId{7};
  propagated.rule = PinRule::kShortLink;
  propagated.anchor_source = AnchorSource::kNone;
  propagated.round = 2;
  original.pins[Ipv4(198, 51, 100, 9).value()] = propagated;

  std::stringstream buffer;
  write_pins(buffer, original);
  const PinningResult reread = read_pins(buffer);

  ASSERT_EQ(reread.pins.size(), original.pins.size());
  for (const auto& [address, pin] : original.pins) {
    const auto it = reread.pins.find(address);
    ASSERT_NE(it, reread.pins.end()) << Ipv4(address).to_string();
    EXPECT_EQ(it->second.metro, pin.metro);
    EXPECT_EQ(it->second.rule, pin.rule);
    EXPECT_EQ(it->second.anchor_source, pin.anchor_source);
    EXPECT_EQ(it->second.round, pin.round);
  }
}

TEST(SerializeCorrupt, ReadPinsSkipsCorruptRows) {
  std::stringstream in;
  in << "address,metro,rule,anchor_source,round\n"  // header, not data
     << "10.0.0.1,3,0,1,0\n"                        // good
     << "10.0.0.2,3,0,1\n"                          // missing field
     << "not-an-ip,3,0,1,0\n"                       // bad address
     << "10.0.0.3,x,0,1,0\n"                        // bad metro
     << "10.0.0.4,3,9,1,0\n"                        // rule past the enum
     << "10.0.0.5,3,0,99,0\n"                       // source past the enum
     << "10.0.0.6,3,0,1,2\n";                       // good
  const PinningResult reread = read_pins(in);
  ASSERT_EQ(reread.pins.size(), 2u);
  EXPECT_EQ(reread.pins.count(Ipv4(10, 0, 0, 1).value()), 1u);
  EXPECT_EQ(reread.pins.count(Ipv4(10, 0, 0, 6).value()), 1u);
  EXPECT_EQ(reread.pins.at(Ipv4(10, 0, 0, 6).value()).round, 2);
}

TEST(SerializeCorrupt, PipelinePinsRoundTripThroughText) {
  // End to end: pins from a real run survive the write/read pair intact.
  std::stringstream buffer;
  write_pins(buffer, PinningResult{});
  EXPECT_TRUE(read_pins(buffer).pins.empty());
}

}  // namespace
}  // namespace cloudmap
