// Border (ABI/CBI) extraction on hand-crafted traceroute records: every
// exclusion rule of §4.1 individually.
#include <gtest/gtest.h>

#include "controlplane/bgp.h"
#include "fixtures.h"
#include "infer/border.h"

namespace cloudmap {
namespace {

using testfx::small_world;

class BorderTest : public ::testing::Test {
 protected:
  BorderTest()
      : world_(small_world()),
        sim_(world_),
        feeds_(default_collector_feeds(world_, 11)),
        snapshot_(build_snapshot(world_, sim_, feeds_)),
        whois_(WhoisRegistry::from_world(world_)),
        as2org_(As2Org::from_world(world_)),
        peeringdb_(PeeringDb::from_world(world_)),
        annotator_(&snapshot_, &whois_, &as2org_, &peeringdb_) {
    const AsId amazon = world_.cloud_primary(CloudProvider::kAmazon);
    amazon_org_ = world_.ases[amazon.value].org;
    amazon_addr_ =
        world_.ases[amazon.value].announced_prefixes.front().network().next(9);
    for (const AutonomousSystem& as : world_.ases) {
      if (as.type == AsType::kEnterprise && !as.announced_prefixes.empty()) {
        client_addr_ = as.announced_prefixes.front().network().next(9);
        client_addr2_ = as.announced_prefixes.front().network().next(10);
        break;
      }
    }
  }

  static TracerouteHop hop(Ipv4 address, double rtt = 1.0) {
    return TracerouteHop{address, rtt, true};
  }
  static TracerouteHop star() { return TracerouteHop{}; }

  TracerouteRecord record(std::vector<TracerouteHop> hops,
                          Ipv4 dst = Ipv4(20, 99, 99, 99)) const {
    TracerouteRecord out;
    out.destination = dst;
    out.hops = std::move(hops);
    out.status = TracerouteStatus::kGapLimit;
    return out;
  }

  const World& world_;
  BgpSimulator sim_;
  std::vector<AsId> feeds_;
  BgpSnapshot snapshot_;
  WhoisRegistry whois_;
  As2Org as2org_;
  PeeringDb peeringdb_;
  Annotator annotator_;
  OrgId amazon_org_;
  Ipv4 amazon_addr_;
  Ipv4 client_addr_;
  Ipv4 client_addr2_;
};

TEST_F(BorderTest, ExtractsSimpleSegment) {
  BorderWalkStats stats;
  const Ipv4 private1(10, 0, 0, 1);
  const auto segment = extract_segment(
      record({hop(private1), hop(amazon_addr_), hop(client_addr_),
              hop(client_addr2_)}),
      annotator_, amazon_org_, stats);
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->abi, amazon_addr_);
  EXPECT_EQ(segment->cbi, client_addr_);
  EXPECT_EQ(segment->prior_abi, private1);
  EXPECT_EQ(segment->post_cbi, client_addr2_);
  EXPECT_EQ(stats.extracted, 1u);
}

TEST_F(BorderTest, PrivateHopsAreStillInside) {
  BorderWalkStats stats;
  const auto segment = extract_segment(
      record({hop(Ipv4(10, 0, 0, 1)), hop(Ipv4(10, 0, 0, 5)),
              hop(amazon_addr_), hop(client_addr_)}),
      annotator_, amazon_org_, stats);
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->cbi, client_addr_);
}

TEST_F(BorderTest, NoSegmentWhenNeverLeaving) {
  BorderWalkStats stats;
  const auto segment = extract_segment(
      record({hop(Ipv4(10, 0, 0, 1)), hop(amazon_addr_)}), annotator_,
      amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
  EXPECT_EQ(stats.never_left_cloud, 1u);
}

TEST_F(BorderTest, GapBeforeBorderExcluded) {
  BorderWalkStats stats;
  const auto segment = extract_segment(
      record({hop(Ipv4(10, 0, 0, 1)), star(), hop(amazon_addr_),
              hop(client_addr_)}),
      annotator_, amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
  EXPECT_EQ(stats.gap_before_border, 1u);
}

TEST_F(BorderTest, LoopExcluded) {
  BorderWalkStats stats;
  const Ipv4 a(10, 0, 0, 1);
  const Ipv4 b(10, 0, 0, 2);
  const auto segment = extract_segment(
      record({hop(a), hop(b), hop(a), hop(amazon_addr_), hop(client_addr_)}),
      annotator_, amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
  EXPECT_EQ(stats.loop, 1u);
}

TEST_F(BorderTest, DuplicateExcluded) {
  BorderWalkStats stats;
  const Ipv4 a(10, 0, 0, 1);
  const auto segment = extract_segment(
      record({hop(a), hop(a), hop(amazon_addr_), hop(client_addr_)}),
      annotator_, amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
  EXPECT_EQ(stats.duplicate_before_border, 1u);
}

TEST_F(BorderTest, CbiAsDestinationExcluded) {
  BorderWalkStats stats;
  const auto segment =
      extract_segment(record({hop(Ipv4(10, 0, 0, 1)), hop(amazon_addr_),
                              hop(client_addr_)},
                             /*dst=*/client_addr_),
                      annotator_, amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
  EXPECT_EQ(stats.cbi_is_destination, 1u);
}

TEST_F(BorderTest, ReentryExcluded) {
  BorderWalkStats stats;
  const auto segment = extract_segment(
      record({hop(Ipv4(10, 0, 0, 1)), hop(amazon_addr_), hop(client_addr_),
              hop(amazon_addr_.next(1))}),
      annotator_, amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
  EXPECT_EQ(stats.reentered_cloud, 1u);
}

TEST_F(BorderTest, CbiAtFirstHopRejected) {
  BorderWalkStats stats;
  const auto segment = extract_segment(record({hop(client_addr_)}),
                                       annotator_, amazon_org_, stats);
  EXPECT_FALSE(segment.has_value());
}

TEST_F(BorderTest, MultipleAmazonAsnsAreOneOrg) {
  // A hop announced by a secondary Amazon ASN must still count as inside.
  const auto& amazon_ases =
      world_.cloud_ases[static_cast<int>(CloudProvider::kAmazon)];
  ASSERT_GE(amazon_ases.size(), 2u);
  for (const AsId id : amazon_ases) {
    EXPECT_EQ(world_.ases[id.value].org, amazon_org_);
  }
}

TEST_F(BorderTest, RttsAreRecorded) {
  BorderWalkStats stats;
  const auto segment = extract_segment(
      record({hop(Ipv4(10, 0, 0, 1), 0.5), hop(amazon_addr_, 2.5),
              hop(client_addr_, 3.5)}),
      annotator_, amazon_org_, stats);
  ASSERT_TRUE(segment.has_value());
  EXPECT_DOUBLE_EQ(segment->abi_rtt_ms, 2.5);
  EXPECT_DOUBLE_EQ(segment->cbi_rtt_ms, 3.5);
}

}  // namespace
}  // namespace cloudmap
