// Figure-series plumbing used by the benches: CDF grids, knees, and the
// boxplot summaries under adversarial inputs.
#include <gtest/gtest.h>

#include "util/stats.h"

namespace cloudmap {
namespace {

TEST(CdfSeriesTest, EmptySampleIsAllZero) {
  const CdfSeries series = cdf_series({}, linspace(0, 10, 11));
  for (const double fraction : series.fraction)
    EXPECT_DOUBLE_EQ(fraction, 0.0);
}

TEST(CdfSeriesTest, PointMassJumpsAtValue) {
  std::vector<double> sample(100, 5.0);
  const CdfSeries series = cdf_series(sample, linspace(0, 10, 11));
  EXPECT_DOUBLE_EQ(series.fraction[4], 0.0);  // x=4 < 5
  EXPECT_DOUBLE_EQ(series.fraction[5], 1.0);  // x=5 includes the mass
}

TEST(CdfSeriesTest, GridIsPreserved) {
  const auto grid = logspace(0, 2, 5);
  const CdfSeries series = cdf_series({1.0, 10.0, 100.0}, grid);
  ASSERT_EQ(series.x.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(series.x[i], grid[i]);
}

TEST(KneeTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(cdf_knee(CdfSeries{}), 0.0);
  CdfSeries two;
  two.x = {1.0, 2.0};
  two.fraction = {0.5, 1.0};
  EXPECT_DOUBLE_EQ(cdf_knee(two), 1.0);
}

TEST(KneeTest, FindsTheBend) {
  // Steep rise to x=2, flat after: knee at ~2.
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i)
    sample.push_back(2.0 * static_cast<double>(i) / 1000.0);
  sample.push_back(100.0);
  const CdfSeries series = cdf_series(sample, linspace(0, 10, 21));
  const double knee = cdf_knee(series);
  EXPECT_GE(knee, 1.0);
  EXPECT_LE(knee, 3.0);
}

TEST(BoxStatsTest, SingleElement) {
  const BoxStats box = box_stats({42.0});
  EXPECT_DOUBLE_EQ(box.min, 42.0);
  EXPECT_DOUBLE_EQ(box.median, 42.0);
  EXPECT_DOUBLE_EQ(box.max, 42.0);
  EXPECT_EQ(box.count, 1u);
}

TEST(BoxStatsTest, OrderInvariant) {
  const BoxStats sorted = box_stats({1, 2, 3, 4, 5, 6, 7, 8});
  const BoxStats shuffled = box_stats({8, 3, 1, 6, 2, 7, 5, 4});
  EXPECT_DOUBLE_EQ(sorted.q1, shuffled.q1);
  EXPECT_DOUBLE_EQ(sorted.median, shuffled.median);
  EXPECT_DOUBLE_EQ(sorted.q3, shuffled.q3);
}

TEST(BoxStatsTest, QuartilesBracketMedian) {
  std::vector<double> sample;
  for (int i = 0; i < 97; ++i) sample.push_back(i * i * 0.37);
  const BoxStats box = box_stats(sample);
  EXPECT_LE(box.min, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.max);
}

TEST(QuantileSummaryTest, ContainsAllFields) {
  const std::string summary = quantile_summary({1.0, 2.0, 3.0});
  EXPECT_NE(summary.find("p10="), std::string::npos);
  EXPECT_NE(summary.find("p50="), std::string::npos);
  EXPECT_NE(summary.find("p90="), std::string::npos);
  EXPECT_NE(summary.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace cloudmap
