// Traceroute engine: statuses, gap limit, artifacts, RTT behaviour.
#include <gtest/gtest.h>

#include <limits>

#include "controlplane/bgp.h"
#include "dataplane/traceroute.h"
#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

class TracerouteTest : public ::testing::Test {
 protected:
  TracerouteTest()
      : world_(small_world()), sim_(world_), forwarder_(world_, sim_) {}

  VantagePoint vp(std::size_t index = 0) const {
    const auto regions = world_.regions_of(CloudProvider::kAmazon);
    return VantagePoint::cloud_vm(CloudProvider::kAmazon, regions[index],
                                  "vm");
  }

  const World& world_;
  BgpSimulator sim_;
  Forwarder forwarder_;
};

TEST_F(TracerouteTest, UnroutedTargetsEndWithGapLimit) {
  TracerouteEngine engine(forwarder_, 1);
  // 99/8 is entirely unallocated in the address plan.
  const TracerouteRecord record = engine.trace(vp(), Ipv4(99, 1, 2, 3));
  EXPECT_EQ(record.status, TracerouteStatus::kGapLimit);
  // The record ends with gap_limit consecutive unresponsive hops.
  ASSERT_GE(record.hops.size(), 5u);
  for (std::size_t i = record.hops.size() - 5; i < record.hops.size(); ++i)
    EXPECT_FALSE(record.hops[i].responded);
}

TEST_F(TracerouteTest, RttsAreNonNegativeAndRoughlyMonotonic) {
  TracerouteEngine engine(forwarder_, 2);
  int checked = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (checked > 300) break;
    const TracerouteRecord record =
        engine.trace(vp(), target.network().next(1));
    double previous = -1.0;
    for (const TracerouteHop& hop : record.hops) {
      if (!hop.responded) continue;
      EXPECT_GE(hop.rtt_ms, 0.0);
      // Jitter can locally reorder, but not by much more than the queueing
      // bound (2 ms) plus jitter tails.
      if (previous >= 0.0) {
        EXPECT_GE(hop.rtt_ms, previous - 6.0);
      }
      previous = hop.rtt_ms;
    }
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST_F(TracerouteTest, SomeTracesComplete) {
  TracerouteEngine engine(forwarder_, 3);
  int completed = 0;
  int examined = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (++examined > 2000) break;
    const TracerouteRecord record =
        engine.trace(vp(), target.network().next(1));
    if (record.status == TracerouteStatus::kCompleted) ++completed;
  }
  // Host response is ~10%; expect a low but nonzero completion rate.
  EXPECT_GT(completed, 20);
  EXPECT_LT(completed, 600);
}

TEST_F(TracerouteTest, TrueEgressMatchesGroundTruthInterconnect) {
  TracerouteEngine engine(forwarder_, 4);
  int with_egress = 0;
  for (const Prefix& target : world_.probeable_slash24s()) {
    if (with_egress > 100) break;
    const TracerouteRecord record =
        engine.trace(vp(), target.network().next(1));
    if (!record.true_egress.valid()) continue;
    ++with_egress;
    bool found = false;
    for (const GroundTruthInterconnect& ic : world_.interconnects)
      if (ic.link == record.true_egress) found = true;
    EXPECT_TRUE(found);
  }
  EXPECT_GT(with_egress, 50);
}

TEST_F(TracerouteTest, DeterministicUnderSeed) {
  TracerouteEngine engine_a(forwarder_, 7);
  TracerouteEngine engine_b(forwarder_, 7);
  for (int i = 0; i < 50; ++i) {
    const Ipv4 dst(Ipv4(20, 0, static_cast<std::uint8_t>(i), 1));
    const TracerouteRecord a = engine_a.trace(vp(), dst);
    const TracerouteRecord b = engine_b.trace(vp(), dst);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].address, b.hops[h].address);
      EXPECT_EQ(a.hops[h].responded, b.hops[h].responded);
    }
  }
}

TEST_F(TracerouteTest, FirstHopIsGatewayAddress) {
  TracerouteEngine engine(forwarder_, 8);
  const auto regions = world_.regions_of(CloudProvider::kAmazon);
  for (const RegionId region : regions) {
    const VantagePoint vantage =
        VantagePoint::cloud_vm(CloudProvider::kAmazon, region, "vm");
    const TracerouteRecord record = engine.trace(vantage, Ipv4(20, 0, 0, 1));
    ASSERT_FALSE(record.hops.empty());
    if (record.hops.front().responded) {
      EXPECT_EQ(record.hops.front().address,
                world_.interface(world_.region(region).vm_gateway).address);
    }
  }
}

TEST_F(TracerouteTest, GapLimitIsConfigurable) {
  TracerouteOptions options;
  options.gap_limit = 3;
  TracerouteEngine engine(forwarder_, 9, options);
  const TracerouteRecord record = engine.trace(vp(), Ipv4(99, 1, 2, 3));
  int trailing = 0;
  for (auto it = record.hops.rbegin();
       it != record.hops.rend() && !it->responded; ++it)
    ++trailing;
  EXPECT_EQ(trailing, 3);
}

TEST_F(TracerouteTest, OptionsClampedSanitizesEveryField) {
  TracerouteOptions options;
  options.gap_limit = 0;  // would never terminate unrouted traces
  options.host_response = 1.5;
  options.loop_probability = -0.25;
  options.queueing_probability = 2.0;
  options.jitter_mean_ms = -3.0;
  options.queueing_max_ms = 1e12;
  options.response_scale = -1.0;
  const TracerouteOptions clamped = options.clamped();
  EXPECT_EQ(clamped.gap_limit, 1);
  EXPECT_DOUBLE_EQ(clamped.host_response, 1.0);
  EXPECT_DOUBLE_EQ(clamped.loop_probability, 0.0);
  EXPECT_DOUBLE_EQ(clamped.queueing_probability, 1.0);
  EXPECT_DOUBLE_EQ(clamped.jitter_mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(clamped.queueing_max_ms, 1e6);
  EXPECT_DOUBLE_EQ(clamped.response_scale, 0.0);
  // NaN lands at the low bound rather than propagating.
  TracerouteOptions poisoned;
  poisoned.host_response = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(poisoned.clamped().host_response, 0.0);
  // Defaults are already in range and survive untouched.
  const TracerouteOptions defaults;
  const TracerouteOptions same = defaults.clamped();
  EXPECT_EQ(same.gap_limit, defaults.gap_limit);
  EXPECT_DOUBLE_EQ(same.host_response, defaults.host_response);
  EXPECT_DOUBLE_EQ(same.response_scale, 1.0);
}

TEST_F(TracerouteTest, ZeroGapLimitTerminates) {
  // gap_limit 0 is clamped to 1 at engine construction, so an unrouted
  // trace still ends (previously this configuration was rejected nowhere).
  TracerouteOptions options;
  options.gap_limit = 0;
  TracerouteEngine engine(forwarder_, 12, options);
  const TracerouteRecord record = engine.trace(vp(), Ipv4(99, 1, 2, 3));
  EXPECT_EQ(record.status, TracerouteStatus::kGapLimit);
  ASSERT_FALSE(record.hops.empty());
  EXPECT_FALSE(record.hops.back().responded);
}

TEST_F(TracerouteTest, ResponseScaleOneIsStreamIdentical) {
  // scale 1.0 multiplies every response probability by exactly 1.0, so the
  // RNG consumption — and with it every hop — is bit-identical to the
  // default engine.
  TracerouteOptions scaled;
  scaled.response_scale = 1.0;
  TracerouteEngine engine_a(forwarder_, 13);
  TracerouteEngine engine_b(forwarder_, 13, scaled);
  for (int i = 0; i < 50; ++i) {
    const Ipv4 dst(20, 0, static_cast<std::uint8_t>(i), 1);
    const TracerouteRecord a = engine_a.trace(vp(), dst);
    const TracerouteRecord b = engine_b.trace(vp(), dst);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    EXPECT_EQ(a.status, b.status);
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].address, b.hops[h].address);
      EXPECT_EQ(a.hops[h].responded, b.hops[h].responded);
    }
  }
}

TEST_F(TracerouteTest, ResponseScaleZeroSilencesEveryRouter) {
  TracerouteOptions options;
  options.response_scale = 0.0;
  options.host_response = 0.0;
  TracerouteEngine engine(forwarder_, 14, options);
  const TracerouteRecord record = engine.trace(vp(), Ipv4(20, 0, 0, 1));
  for (const TracerouteHop& hop : record.hops)
    EXPECT_FALSE(hop.responded);
  EXPECT_NE(record.status, TracerouteStatus::kCompleted);
}

class PingTest : public TracerouteTest {};

TEST_F(PingTest, MinRttConvergesToGeometricBase) {
  PingProber prober(forwarder_, 10, /*samples=*/16, /*jitter=*/0.08);
  int checked = 0;
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    const auto base = forwarder_.rtt_to_interface(vp(), ic.client_interface);
    if (!base) continue;
    const auto measured = prober.min_rtt(vp(), ic.client_interface);
    ASSERT_TRUE(measured.has_value());
    EXPECT_GE(*measured, *base);
    EXPECT_LT(*measured, *base + 1.0);  // min of 16 exponential draws
    if (++checked > 50) break;
  }
  EXPECT_GT(checked, 20);
}

TEST_F(PingTest, CampaignCachesAndRanks) {
  std::vector<VantagePoint> vps;
  for (const RegionId region : world_.regions_of(CloudProvider::kAmazon))
    vps.push_back(
        VantagePoint::cloud_vm(CloudProvider::kAmazon, region, "vm"));
  RttCampaign campaign(forwarder_, vps, 11);
  for (const GroundTruthInterconnect& ic : world_.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    const auto best = campaign.best_rtt(ic.client_interface);
    if (!best) continue;
    const auto two = campaign.two_best_rtts(ic.client_interface);
    if (two) {
      EXPECT_LE(two->first, two->second);
      EXPECT_DOUBLE_EQ(two->first, best->first);
    }
    // Cached value identical on re-query.
    const auto again = campaign.rtt(best->second, ic.client_interface);
    ASSERT_TRUE(again.has_value());
    EXPECT_DOUBLE_EQ(*again, best->first);
    break;
  }
}

}  // namespace
}  // namespace cloudmap
