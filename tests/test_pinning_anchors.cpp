// §6.1 anchor sources in isolation: DNS feasibility, IXP local/remote,
// single-metro footprints, native-colo knee, and the consistency filters.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "pinning/pinning.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class AnchorUnit : public ::testing::Test {
 protected:
  AnchorUnit()
      : pipeline_(small_pipeline()),
        annotator_(pipeline_.annotator()) {
    annotator_.set_snapshot(&pipeline_.snapshot_round2());
    inputs_.fabric = &pipeline_.campaign().fabric();
    inputs_.annotator = &annotator_;
    inputs_.peeringdb = &pipeline_.peeringdb();
    inputs_.dns = &pipeline_.dns();
    inputs_.aliases = &pipeline_.alias_sets();
    inputs_.world = &pipeline_.world();
    inputs_.rtts = &pipeline_.mutable_rtts();
    inputs_.vps = &pipeline_.campaign().vantage_points();
  }

  Pipeline& pipeline_;
  Annotator annotator_;
  Pinner::Inputs inputs_;
};

TEST_F(AnchorUnit, DnsAnchorsMatchParsedNames) {
  Pinner pinner(inputs_);
  const AnchorSet anchors = pinner.identify_anchors();
  const World& world = pipeline_.world();
  std::size_t dns_checked = 0;
  for (const auto& [address, anchor] : anchors.anchors) {
    if (anchor.source != AnchorSource::kDns) continue;
    const auto name = pipeline_.dns().name_of(Ipv4(address));
    ASSERT_TRUE(name.has_value());
    const auto parsed = parse_dns_location(*name, world);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, anchor.metro);
    ++dns_checked;
  }
  EXPECT_GT(dns_checked, 5u);
}

TEST_F(AnchorUnit, IxpAnchorsSitOnIxpLans) {
  Pinner pinner(inputs_);
  const AnchorSet anchors = pinner.identify_anchors();
  for (const auto& [address, anchor] : anchors.anchors) {
    if (anchor.source != AnchorSource::kIxp) continue;
    const auto ixp = pipeline_.peeringdb().ixp_of(Ipv4(address));
    ASSERT_TRUE(ixp.has_value());
    // Pinned to the IXP's (single) metro.
    const Ixp& entity = pipeline_.world().ixp(*ixp);
    ASSERT_FALSE(entity.multi_metro());
    EXPECT_EQ(anchor.metro, entity.metros.front());
  }
}

TEST_F(AnchorUnit, NativeAnchorsAreWithinTheKnee) {
  Pinner pinner(inputs_);
  const AnchorSet anchors = pinner.identify_anchors();
  const auto& vps = *inputs_.vps;
  std::size_t checked = 0;
  for (const auto& [address, anchor] : anchors.anchors) {
    if (anchor.source != AnchorSource::kNativeColo) continue;
    double best = 1e18;
    std::size_t best_vp = 0;
    for (std::size_t v = 0; v < vps.size(); ++v) {
      const auto rtt = pinner.rtt_from(v, Ipv4(address));
      if (rtt && *rtt < best) {
        best = *rtt;
        best_vp = v;
      }
    }
    ASSERT_LT(best, 1e18);
    EXPECT_LE(best, 2.0);
    EXPECT_EQ(anchor.metro,
              pipeline_.world().region(vps[best_vp].region).metro);
    ++checked;
  }
  EXPECT_GT(checked, 3u);
}

TEST_F(AnchorUnit, FootprintAnchorsComeFromSingleMetroAses) {
  Pinner pinner(inputs_);
  const AnchorSet anchors = pinner.identify_anchors();
  for (const auto& [address, anchor] : anchors.anchors) {
    if (anchor.source != AnchorSource::kMetroFootprint) continue;
    const HopAnnotation a = annotator_.annotate(Ipv4(address));
    if (a.asn.is_unknown()) continue;
    const auto metros =
        pipeline_.peeringdb().metro_footprint(pipeline_.world(), a.asn);
    ASSERT_EQ(metros.size(), 1u);
    EXPECT_EQ(anchor.metro, metros.front());
  }
}

TEST_F(AnchorUnit, TightDnsSlackExcludesMore) {
  PinningOptions loose;
  loose.dns_rtt_slack_ms = 5.0;
  PinningOptions tight;
  tight.dns_rtt_slack_ms = -2.0;  // demand measured > bound by 2 ms
  Pinner loose_pinner(inputs_, loose);
  Pinner tight_pinner(inputs_, tight);
  const AnchorSet loose_anchors = loose_pinner.identify_anchors();
  const AnchorSet tight_anchors = tight_pinner.identify_anchors();
  EXPECT_GE(tight_anchors.dns_rtt_excluded, loose_anchors.dns_rtt_excluded);
}

TEST_F(AnchorUnit, IxpLocalSlackControlsRemoteExclusion) {
  PinningOptions strict;
  strict.ixp_local_slack_ms = 0.01;
  PinningOptions lax;
  lax.ixp_local_slack_ms = 1000.0;  // everything is "local"
  Pinner strict_pinner(inputs_, strict);
  Pinner lax_pinner(inputs_, lax);
  const AnchorSet strict_anchors = strict_pinner.identify_anchors();
  const AnchorSet lax_anchors = lax_pinner.identify_anchors();
  EXPECT_GT(strict_anchors.ixp_remote_excluded,
            lax_anchors.ixp_remote_excluded);
  EXPECT_GE(lax_anchors.ixp, strict_anchors.ixp);
}

TEST_F(AnchorUnit, PropagationFromEmptyAnchorsPinsNothingAtMetroLevel) {
  Pinner pinner(inputs_);
  AnchorSet empty;
  const PinningResult result = pinner.propagate(empty);
  EXPECT_TRUE(result.pins.empty());
  // The regional fallback still operates (it needs no anchors).
  EXPECT_GT(result.regional.size() + result.rtt_ratios.size(), 0u);
}

TEST_F(AnchorUnit, PropagationNeverOverwritesAnchors) {
  Pinner pinner(inputs_);
  const AnchorSet anchors = pinner.identify_anchors();
  const PinningResult result = pinner.propagate(anchors);
  for (const auto& [address, anchor] : anchors.anchors) {
    const auto pin = result.pins.find(address);
    ASSERT_NE(pin, result.pins.end());
    EXPECT_EQ(pin->second.metro, anchor.metro);
    EXPECT_EQ(pin->second.rule, PinRule::kAnchor);
  }
}

}  // namespace
}  // namespace cloudmap
