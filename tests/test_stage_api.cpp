// The redesigned staged-execution API: run_until() runs each prerequisite
// exactly once (counter-verified through the metrics registry), repeated
// calls are no-ops, report() before a stage ran returns nullptr rather than
// crashing, and the stage graph's dependency edges hold.
#include <gtest/gtest.h>

#include <sstream>

#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_world;

TEST(StageApi, ReportBeforeRunIsAbsentNotACrash) {
  Pipeline pipeline(small_world());
  for (const StageId stage : all_stages()) {
    EXPECT_FALSE(pipeline.stage_ran(stage)) << to_string(stage);
    EXPECT_EQ(pipeline.report(stage), nullptr) << to_string(stage);
  }
  EXPECT_TRUE(pipeline.reports().empty());
}

TEST(StageApi, RunUntilRunsEachPrerequisiteExactlyOnce) {
  Pipeline pipeline(small_world());
  pipeline.run_until(StageId::kHeuristics);

  // The registry counts actual body executions, so a re-run would show.
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round1.runs"), 1u);
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round2.runs"), 1u);
  EXPECT_EQ(pipeline.metrics().counter_value("stage.heuristics.runs"), 1u);
  EXPECT_TRUE(pipeline.stage_ran(StageId::kRound1));
  EXPECT_TRUE(pipeline.stage_ran(StageId::kRound2));
  EXPECT_TRUE(pipeline.stage_ran(StageId::kHeuristics));

  // Later stages have not run.
  EXPECT_FALSE(pipeline.stage_ran(StageId::kAliasVerification));
  EXPECT_FALSE(pipeline.stage_ran(StageId::kVpiDetection));
  EXPECT_FALSE(pipeline.stage_ran(StageId::kPinning));
  EXPECT_EQ(pipeline.metrics().counter_value("stage.vpi_detection.runs"), 0u);
}

TEST(StageApi, RepeatedRunUntilIsANoOp) {
  Pipeline pipeline(small_world());
  pipeline.run_until(StageId::kRound2);
  pipeline.run_until(StageId::kRound2);
  pipeline.run_until(StageId::kRound1);  // prerequisite of an already-run stage
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round1.runs"), 1u);
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round2.runs"), 1u);

  // Artifact accessors ride the same memoization.
  (void)pipeline.round1();
  (void)pipeline.round2();
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round1.runs"), 1u);
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round2.runs"), 1u);
}

TEST(StageApi, PinningBranchDoesNotPullInVpiDetection) {
  Pipeline pipeline(small_world());
  pipeline.run_until(StageId::kPinning);
  EXPECT_TRUE(pipeline.stage_ran(StageId::kAliasVerification));
  EXPECT_TRUE(pipeline.stage_ran(StageId::kAnchors));
  EXPECT_TRUE(pipeline.stage_ran(StageId::kPinning));
  // VPI detection is a sibling branch off alias verification, not a
  // prerequisite of pinning.
  EXPECT_FALSE(pipeline.stage_ran(StageId::kVpiDetection));
}

TEST(StageApi, RunAllCompletesEveryStage) {
  Pipeline pipeline(small_world());
  pipeline.run_all();
  for (const StageId stage : all_stages()) {
    EXPECT_TRUE(pipeline.stage_ran(stage)) << to_string(stage);
    ASSERT_NE(pipeline.report(stage), nullptr) << to_string(stage);
    EXPECT_EQ(pipeline.report(stage)->id, stage);
  }
  const std::vector<StageReport> reports = pipeline.reports();
  ASSERT_EQ(reports.size(), kStageCount);
  // Canonical order, not completion order.
  for (std::size_t i = 0; i < reports.size(); ++i)
    EXPECT_EQ(stage_index(reports[i].id), i);
}

TEST(StageApi, ReportsCarryRealAccounting) {
  Pipeline pipeline(small_world());
  pipeline.run_until(StageId::kRound1);
  const StageReport* round1 = pipeline.report(StageId::kRound1);
  ASSERT_NE(round1, nullptr);
  EXPECT_GT(round1->targets, 0u);
  EXPECT_GT(round1->traceroutes, 0u);
  EXPECT_GT(round1->probes, 0u);
  EXPECT_GT(round1->bgp_cache_hits + round1->bgp_cache_misses, 0u);
  EXPECT_GE(round1->workers, 1u);
  EXPECT_GE(round1->wall_ms, 0.0);
  // RoundStats agree with the report.
  EXPECT_EQ(round1->traceroutes, pipeline.round1().traceroutes);
  EXPECT_EQ(round1->probes, pipeline.round1().probes);
}

TEST(StageApi, HeuristicsReportCarriesTallies) {
  Pipeline pipeline(small_world());
  pipeline.run_until(StageId::kHeuristics);
  const StageReport* report = pipeline.report(StageId::kHeuristics);
  ASSERT_NE(report, nullptr);
  EXPECT_FALSE(report->tallies.empty());
}

TEST(StageApi, DisabledMetricsStillMemoizeStages) {
  PipelineOptions options;
  options.metrics = false;
  Pipeline pipeline(small_world(), options);
  pipeline.run_until(StageId::kRound2);
  EXPECT_TRUE(pipeline.stage_ran(StageId::kRound1));
  EXPECT_TRUE(pipeline.stage_ran(StageId::kRound2));
  // No registry traffic when disabled — memoization lives in the reports.
  EXPECT_EQ(pipeline.metrics().counter_value("stage.round1.runs"), 0u);
  // Reports still exist (the structural fields cost nothing), but the
  // clock-derived fields stay zero.
  const StageReport* round1 = pipeline.report(StageId::kRound1);
  ASSERT_NE(round1, nullptr);
  EXPECT_EQ(round1->wall_ms, 0.0);
  pipeline.run_until(StageId::kRound2);  // still a no-op
  EXPECT_EQ(pipeline.round1().traceroutes,
            pipeline.report(StageId::kRound1)->traceroutes);
}

TEST(StageApi, MetricsArtifactCoversExactlyTheStagesThatRan) {
  Pipeline pipeline(small_world());
  pipeline.run_until(StageId::kHeuristics);
  std::ostringstream out;
  pipeline.write_metrics_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"round1\""), std::string::npos);
  EXPECT_NE(json.find("\"round2\""), std::string::npos);
  EXPECT_NE(json.find("\"heuristics\""), std::string::npos);
  EXPECT_EQ(json.find("\"vpi_detection\""), std::string::npos);
  EXPECT_EQ(json.find("\"pinning\""), std::string::npos);
}

}  // namespace
}  // namespace cloudmap
