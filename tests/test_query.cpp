// QueryEngine correctness (src/query/): every typed query cross-checked
// against a brute-force scan of the raw snapshot, and the zero-locking
// claim exercised with concurrent readers (this file matches the CI TSan
// filter, so data races here fail the sanitize job).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <optional>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "fixtures.h"
#include "query/diff.h"
#include "query/engine.h"
#include "query/fabric_index.h"

namespace cloudmap {
namespace {

const FabricIndex& shared_index() {
  static const FabricIndex* index =
      new FabricIndex(testfx::small_pipeline().run_snapshot());
  return *index;
}

TEST(QueryEngine, PeersOfMatchesBruteForce) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);
  ASSERT_FALSE(index.peer_asns().empty());
  for (std::uint32_t asn : index.peer_asns()) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < index.segments().size(); ++i)
      if (index.segments()[i].peer_asn == Asn{asn}) expected.push_back(i);
    EXPECT_EQ(engine.peers_of(Asn{asn}), expected) << "AS" << asn;
    EXPECT_FALSE(expected.empty()) << "peer_asns() listed an absent AS";
  }
  EXPECT_TRUE(engine.peers_of(Asn{4294967295u}).empty());
}

TEST(QueryEngine, InterfacesInMatchesBruteForce) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);
  ASSERT_FALSE(index.pinned_metros().empty());
  for (std::uint32_t metro : index.pinned_metros()) {
    std::vector<std::uint32_t> expected;
    for (const SnapshotPin& pin : index.snapshot().pins)
      if (pin.metro == metro) expected.push_back(pin.address);
    EXPECT_EQ(engine.interfaces_in(metro), expected) << "metro " << metro;
  }
  EXPECT_TRUE(engine.interfaces_in(kInvalidIndex).empty());
}

TEST(QueryEngine, VpiCandidatesMatchBruteForce) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);
  std::vector<std::uint32_t> expected;
  for (std::uint32_t i = 0; i < index.segments().size(); ++i)
    if (index.segments()[i].vpi) expected.push_back(i);
  EXPECT_EQ(engine.vpi_candidates(), expected);
}

TEST(QueryEngine, LookupFindsEveryInterfaceExactly) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);
  for (std::uint32_t i = 0; i < index.segments().size(); ++i) {
    const SnapshotSegment& seg = index.segments()[i];
    for (const Ipv4 address : {seg.abi, seg.cbi}) {
      const auto hit = engine.lookup(address);
      ASSERT_TRUE(hit.has_value()) << address.to_string();
      EXPECT_TRUE(hit->is_interface);
      EXPECT_EQ(hit->prefix.length(), 32);
      EXPECT_EQ(hit->prefix.network(), address);
      ASSERT_NE(hit->segments, nullptr);
      EXPECT_TRUE(std::find(hit->segments->begin(), hit->segments->end(),
                            i) != hit->segments->end());
      EXPECT_TRUE(address == seg.abi ? hit->abi : hit->cbi);
    }
  }
}

TEST(QueryEngine, LookupCoversDestinationCones) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);
  bool checked = false;
  for (std::uint32_t i = 0; i < index.segments().size(); ++i) {
    for (std::uint32_t network : index.segments()[i].dest_slash24s) {
      // Probe a host inside the /24 that is not itself an interface.
      const Ipv4 probe(network | 0xFDu);
      const auto hit = engine.lookup(probe);
      ASSERT_TRUE(hit.has_value()) << probe.to_string();
      if (hit->is_interface) continue;  // a /32 interface shadowed the cone
      EXPECT_EQ(hit->prefix.length(), 24);
      ASSERT_NE(hit->segments, nullptr);
      EXPECT_TRUE(std::find(hit->segments->begin(), hit->segments->end(),
                            i) != hit->segments->end());
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
  EXPECT_FALSE(engine.lookup(Ipv4(255, 255, 255, 254)).has_value());
}

TEST(QueryEngine, CountsMatchBruteForce) {
  const FabricIndex& index = shared_index();
  const QueryEngine engine(index);
  const FabricCounts counts = engine.counts();
  const RunSnapshot& snap = index.snapshot();

  std::unordered_set<std::uint32_t> abis, cbis, ases, orgs, vpi_cbis;
  std::size_t ixp = 0, unattributed = 0;
  std::array<std::size_t, 5> by_conf{};
  std::array<std::size_t, kPeeringGroupCount> group_segments{};
  std::array<std::set<std::uint32_t>, kPeeringGroupCount> group_ases;
  for (const SnapshotSegment& seg : snap.segments) {
    abis.insert(seg.abi.value());
    cbis.insert(seg.cbi.value());
    if (seg.peer_asn != Asn{0}) ases.insert(seg.peer_asn.value);
    if (seg.peer_org != OrgId{0}) orgs.insert(seg.peer_org.value);
    ++by_conf[static_cast<std::size_t>(seg.confirmation)];
    if (seg.ixp) ++ixp;
    if (seg.vpi) vpi_cbis.insert(seg.cbi.value());
    if (seg.group == kSnapshotNoGroup) {
      ++unattributed;
    } else {
      ++group_segments[seg.group];
      group_ases[seg.group].insert(seg.peer_asn.value);
    }
  }
  EXPECT_EQ(counts.segments, snap.segments.size());
  EXPECT_EQ(counts.unique_abis, abis.size());
  EXPECT_EQ(counts.unique_cbis, cbis.size());
  EXPECT_EQ(counts.peer_ases, ases.size());
  EXPECT_EQ(counts.peer_orgs, orgs.size());
  for (std::size_t c = 0; c < by_conf.size(); ++c)
    EXPECT_EQ(counts.by_confirmation[c], by_conf[c]) << "confirmation " << c;
  EXPECT_EQ(counts.ixp_segments, ixp);
  EXPECT_EQ(counts.vpi_cbis, vpi_cbis.size());
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g) {
    EXPECT_EQ(counts.group_segments[g], group_segments[g]) << "group " << g;
    EXPECT_EQ(counts.group_ases[g], group_ases[g].size()) << "group " << g;
  }
  EXPECT_EQ(counts.unattributed_segments, unattributed);
  EXPECT_EQ(counts.pinned_interfaces, snap.pins.size());
  EXPECT_EQ(counts.regional_only, snap.regional.size());
  EXPECT_GT(counts.segments, 0u);
  EXPECT_GT(counts.peer_ases, 0u);
}

TEST(QueryEngine, MinConfidenceMatchesBruteForce) {
  const FabricIndex& index = shared_index();
  MetricsRegistry registry(true);
  const QueryEngine engine(index, &registry);
  for (const double threshold : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < index.segments().size(); ++i)
      if (index.segments()[i].confidence >= threshold) expected.push_back(i);
    EXPECT_EQ(engine.segments_min_confidence(threshold), expected)
        << "threshold " << threshold;
  }
  // Thresholds only shrink the answer; <= 0 returns the whole fabric.
  EXPECT_EQ(engine.segments_min_confidence(0.0).size(),
            index.segments().size());
  EXPECT_GE(engine.segments_min_confidence(0.3).size(),
            engine.segments_min_confidence(0.6).size());
  // Every call above bumped the counter: 6 thresholds + 3 shape checks.
  EXPECT_EQ(registry.counter_value("query.min_confidence"), 9u);
}

TEST(QueryEngine, ConfidenceHistogramCoversEverySegment) {
  const FabricIndex& index = shared_index();
  MetricsRegistry registry(true);
  const QueryEngine engine(index, &registry);
  const ConfidenceHistogram& hist = engine.confidence_histogram();
  EXPECT_EQ(hist.segments, index.segments().size());
  std::size_t binned = 0;
  for (const std::size_t bin : hist.bins) binned += bin;
  EXPECT_EQ(binned, index.segments().size());
  double sum = 0.0, lo = 1.0, hi = 0.0;
  for (const SnapshotSegment& seg : index.segments()) {
    sum += seg.confidence;
    lo = std::min(lo, seg.confidence);
    hi = std::max(hi, seg.confidence);
  }
  ASSERT_FALSE(index.segments().empty());
  EXPECT_DOUBLE_EQ(hist.mean, sum / static_cast<double>(hist.segments));
  EXPECT_DOUBLE_EQ(hist.min, lo);
  EXPECT_DOUBLE_EQ(hist.max, hi);
  // The pipeline's fabric carries real (nonzero) confidence throughout.
  EXPECT_GT(hist.min, 0.0);
  EXPECT_LE(hist.max, 1.0);
  EXPECT_EQ(registry.counter_value("query.confidence_histogram"), 1u);

  // counts() aggregates agree with the histogram's moments.
  const FabricCounts counts = engine.counts();
  EXPECT_DOUBLE_EQ(counts.mean_confidence, hist.mean);
  std::size_t confident = 0;
  for (const SnapshotSegment& seg : index.segments())
    if (seg.confidence >= 0.5) ++confident;
  EXPECT_EQ(counts.confident_segments, confident);
}

// One reader's deterministic work slice: a digest over every query class.
// Bit-identical answers at any thread count means identical digests.
std::uint64_t query_digest(const QueryEngine& engine, std::size_t slice,
                           std::size_t slices) {
  const FabricIndex& index = engine.index();
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&digest](std::uint64_t value) {
    digest = (digest ^ value) * 1099511628211ull;
  };
  for (std::size_t a = slice; a < index.peer_asns().size(); a += slices)
    for (std::uint32_t seg : engine.peers_of(Asn{index.peer_asns()[a]}))
      mix(seg);
  for (std::size_t m = slice; m < index.pinned_metros().size(); m += slices)
    for (std::uint32_t addr : engine.interfaces_in(index.pinned_metros()[m]))
      mix(addr);
  for (std::uint32_t seg : engine.vpi_candidates()) mix(seg);
  for (std::size_t i = slice; i < index.segments().size(); i += slices) {
    const auto hit = engine.lookup(index.segments()[i].cbi);
    mix(hit ? hit->segments->size() : 0);
  }
  const FabricCounts counts = engine.counts();
  mix(counts.segments);
  mix(counts.peer_ases);
  mix(counts.vpi_cbis);
  return digest;
}

TEST(QueryEngine, ConcurrentReadersMatchSingleThread) {
  const FabricIndex& index = shared_index();
  MetricsRegistry registry(true);
  const QueryEngine engine(index, &registry);
  constexpr std::size_t kSlices = 4;

  // Reference: every slice computed on one thread.
  std::vector<std::uint64_t> expected(kSlices);
  for (std::size_t s = 0; s < kSlices; ++s)
    expected[s] = query_digest(engine, s, kSlices);

  // Same slices, one thread each, sharing the engine with no locking.
  std::vector<std::uint64_t> got(kSlices);
  std::vector<std::thread> readers;
  for (std::size_t s = 0; s < kSlices; ++s)
    readers.emplace_back(
        [&, s] { got[s] = query_digest(engine, s, kSlices); });
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(got, expected);
  // The shared counters saw both passes (2× each query class).
  EXPECT_GT(registry.counter_value("query.lookups"), 0u);
  EXPECT_GT(registry.counter_value("query.counts"), 0u);
}

TEST(QueryEngine, DiffOfIdenticalSnapshotsIsEmpty) {
  const RunSnapshot& snap = testfx::small_pipeline().run_snapshot();
  const SnapshotDiff diff = diff_snapshots(snap, snap);
  EXPECT_TRUE(diff.identical());
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_TRUE(diff.reconfirmed.empty());
  EXPECT_TRUE(diff.repinned.empty());
  EXPECT_EQ(diff.common_segments, snap.segments.size());
}

TEST(QueryEngine, DiffReportsEachChangeClass) {
  RunSnapshot before = testfx::small_pipeline().run_snapshot();
  RunSnapshot after = before;
  ASSERT_GE(after.segments.size(), 2u);
  ASSERT_FALSE(after.pins.empty());

  // Remove one segment, re-confirm another, add a brand-new one, and move
  // one pin to a different metro.
  const SnapshotSegment removed = after.segments.back();
  after.segments.pop_back();
  const Confirmation old_conf = after.segments[0].confirmation;
  after.segments[0].confirmation = old_conf == Confirmation::kHybrid
                                       ? Confirmation::kReachability
                                       : Confirmation::kHybrid;
  SnapshotSegment added;
  added.abi = Ipv4(10, 99, 99, 1);
  added.cbi = Ipv4(10, 99, 99, 2);
  after.segments.push_back(added);
  after.pins[0].metro += 1;
  canonicalize(after);

  const SnapshotDiff diff = diff_snapshots(before, after);
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].abi, added.abi);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].cbi, removed.cbi);
  ASSERT_EQ(diff.reconfirmed.size(), 1u);
  EXPECT_EQ(diff.reconfirmed[0].before, old_conf);
  ASSERT_EQ(diff.repinned.size(), 1u);
  EXPECT_EQ(diff.repinned[0].metro_after, after.pins[0].metro);
}

}  // namespace
}  // namespace cloudmap
