// Geography and the RTT model.
#include <gtest/gtest.h>

#include "net/geo.h"

namespace cloudmap {
namespace {

constexpr GeoPoint kNewYork{40.71, -74.01};
constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kSydney{-33.87, 151.21};
constexpr GeoPoint kTokyo{35.68, 139.69};

TEST(Geo, ZeroDistanceToSelf) {
  EXPECT_NEAR(haversine_km(kNewYork, kNewYork), 0.0, 1e-9);
}

TEST(Geo, KnownCityPairs) {
  // Reference great-circle distances (±2%).
  EXPECT_NEAR(haversine_km(kNewYork, kLondon), 5570.0, 120.0);
  EXPECT_NEAR(haversine_km(kSydney, kTokyo), 7820.0, 170.0);
}

TEST(Geo, Symmetry) {
  EXPECT_DOUBLE_EQ(haversine_km(kNewYork, kLondon),
                   haversine_km(kLondon, kNewYork));
}

TEST(Geo, TriangleInequality) {
  EXPECT_LE(haversine_km(kNewYork, kTokyo),
            haversine_km(kNewYork, kLondon) + haversine_km(kLondon, kTokyo) +
                1e-6);
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  const double d1 = propagation_delay_ms(kNewYork, kLondon);
  const double d2 = propagation_delay_ms(kNewYork, kSydney);
  EXPECT_GT(d2, d1);
  // NY-London ≈ 5570 km * 1.6 / 200 km/ms ≈ 44.6 ms one way.
  EXPECT_NEAR(d1, 44.6, 2.0);
}

TEST(Geo, RttIsTwicePropagation) {
  EXPECT_DOUBLE_EQ(rtt_ms(kNewYork, kLondon),
                   2.0 * propagation_delay_ms(kNewYork, kLondon));
}

TEST(Geo, InflationFactorApplies) {
  EXPECT_NEAR(propagation_delay_ms(kNewYork, kLondon, 2.0) /
                  propagation_delay_ms(kNewYork, kLondon, 1.0),
              2.0, 1e-9);
}

}  // namespace
}  // namespace cloudmap
