// CIDR prefix algebra.
#include <gtest/gtest.h>

#include "net/prefix.h"

namespace cloudmap {
namespace {

TEST(Prefix, MasksNetworkAddress) {
  const Prefix p(Ipv4(10, 1, 2, 200), 24);
  EXPECT_EQ(p.network().to_string(), "10.1.2.0");
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, Containment) {
  const Prefix p(Ipv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4(10, 1, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4(10, 2, 0, 0)));
  EXPECT_TRUE(p.contains(Prefix(Ipv4(10, 1, 2, 0), 24)));
  EXPECT_FALSE(p.contains(Prefix(Ipv4(10, 0, 0, 0), 8)));
  EXPECT_TRUE(p.contains(p));
}

TEST(Prefix, SizeAndBounds) {
  const Prefix p(Ipv4(10, 1, 2, 0), 30);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.first_address().to_string(), "10.1.2.0");
  EXPECT_EQ(p.last_address().to_string(), "10.1.2.3");
  EXPECT_EQ(Prefix(Ipv4(0, 0, 0, 0), 0).size(), std::uint64_t{1} << 32);
}

TEST(Prefix, SplitProducesDisjointChildren) {
  const Prefix p(Ipv4(10, 0, 0, 0), 8);
  const auto [low, high] = p.split();
  EXPECT_EQ(low.to_string(), "10.0.0.0/9");
  EXPECT_EQ(high.to_string(), "10.128.0.0/9");
  EXPECT_TRUE(p.contains(low));
  EXPECT_TRUE(p.contains(high));
  EXPECT_FALSE(low.contains(high.network()));
}

TEST(Prefix, Slash24OfLongPrefixIsCovering24) {
  const Prefix p(Ipv4(10, 1, 2, 248), 30);
  EXPECT_EQ(p.slash24().to_string(), "10.1.2.248/30");
  // slash24() keeps longer prefixes as-is; covering /24 comes from the
  // network address.
  EXPECT_EQ(Prefix(p.network(), 24).to_string(), "10.1.2.0/24");
}

class PrefixEnumerate : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PrefixEnumerate, Slash24CountMatchesLength) {
  const std::uint8_t length = GetParam();
  const Prefix p(Ipv4(20, 0, 0, 0), length);
  const auto subs = p.enumerate_slash24s();
  ASSERT_EQ(subs.size(), std::size_t{1} << (24 - length));
  // Disjoint, ordered, all within parent.
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].length(), 24);
    EXPECT_TRUE(p.contains(subs[i]));
    if (i > 0) {
      EXPECT_EQ(subs[i].network().value(),
                subs[i - 1].network().value() + 256);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixEnumerate,
                         ::testing::Values(16, 18, 20, 22, 23, 24));

struct PrefixParseCase {
  const char* text;
  bool valid;
};
class PrefixParse : public ::testing::TestWithParam<PrefixParseCase> {};

TEST_P(PrefixParse, HandlesEdgeCases) {
  EXPECT_EQ(Prefix::parse(GetParam().text).has_value(), GetParam().valid)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixParse,
    ::testing::Values(PrefixParseCase{"10.0.0.0/8", true},
                      PrefixParseCase{"0.0.0.0/0", true},
                      PrefixParseCase{"1.2.3.4/32", true},
                      PrefixParseCase{"1.2.3.4/33", false},
                      PrefixParseCase{"1.2.3.4", false},
                      PrefixParseCase{"1.2.3.4/", false},
                      PrefixParseCase{"1.2.3.4/ 8", false},
                      PrefixParseCase{"/8", false},
                      PrefixParseCase{"1.2.3.4/222", false}));

TEST(Prefix, ParseMasksHostBits) {
  const auto p = Prefix::parse("10.1.2.200/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.2.0/24");
}

}  // namespace
}  // namespace cloudmap
