// The observability primitives: counter/gauge/timer semantics, thread
// safety of concurrent bumps, the disabled-registry no-op contract, and the
// JSON/CSV emitters (whose schema CI validates on real artifacts).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/emit.h"
#include "obs/metrics.h"
#include "obs/stage_report.h"
#include "util/parallel.h"

namespace cloudmap {
namespace {

TEST(Metrics, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("never.touched"), 0u);
  registry.add("a", 3);
  registry.add("a");
  registry.add("b", 10);
  EXPECT_EQ(registry.counter_value("a"), 4u);
  EXPECT_EQ(registry.counter_value("b"), 10u);
}

TEST(Metrics, HandlesAreStableAcrossInsertions) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& first = registry.counter("first");
  // Force many insertions around it; the reference must stay valid.
  for (int i = 0; i < 100; ++i)
    registry.counter("filler." + std::to_string(i));
  first.add(7);
  EXPECT_EQ(registry.counter_value("first"), 7u);
  EXPECT_EQ(&first, &registry.counter("first"));
}

TEST(Metrics, ConcurrentAddsLoseNothing) {
  MetricsRegistry registry;
  constexpr std::size_t kItems = 10000;
  MetricsRegistry::Counter& shared = registry.counter("shared");
  parallel_for(kItems, 8, [&](std::size_t) {
    shared.add();
    registry.add("via_name");  // name resolution under contention too
  });
  EXPECT_EQ(registry.counter_value("shared"), kItems);
  EXPECT_EQ(registry.counter_value("via_name"), kItems);
}

TEST(Metrics, GaugesAreLastWriteWins) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.gauge("g").has_value());
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", -2.25);
  ASSERT_TRUE(registry.gauge("g").has_value());
  EXPECT_DOUBLE_EQ(*registry.gauge("g"), -2.25);
}

TEST(Metrics, ScopedTimerAggregatesAcrossThreads) {
  MetricsRegistry registry;
  parallel_for(16, 4, [&](std::size_t) {
    MetricsRegistry::ScopedTimer timer(registry, "work");
    volatile std::size_t sink = 0;
    for (std::size_t k = 0; k < 10000; ++k) sink = sink + k;
  });
  EXPECT_EQ(registry.timer_count("work"), 16u);
  EXPECT_GT(registry.timer_total_ns("work"), 0u);
}

TEST(Metrics, DisabledRegistryIsANoOp) {
  MetricsRegistry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  registry.add("c", 5);
  registry.set_gauge("g", 1.0);
  {
    MetricsRegistry::ScopedTimer timer(registry, "t");
  }
  {
    MetricsRegistry::ScopedTimer timer(nullptr, "t");  // null registry too
  }
  EXPECT_EQ(registry.counter_value("c"), 0u);
  EXPECT_FALSE(registry.gauge("g").has_value());
  EXPECT_EQ(registry.timer_count("t"), 0u);
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.timers.empty());
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.add("zebra");
  registry.add("apple", 2);
  registry.add("mango", 3);
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "apple");
  EXPECT_EQ(snap.counters[1].first, "mango");
  EXPECT_EQ(snap.counters[2].first, "zebra");
  EXPECT_EQ(snap.counters[0].second, 2u);
}

TEST(Metrics, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

StageReport sample_report() {
  StageReport report;
  report.id = StageId::kRound1;
  report.threads = 4;
  report.workers = 4;
  report.wall_ms = 12.5;
  report.targets = 100;
  report.traceroutes = 400;
  report.probes = 9000;
  report.bgp_cache_hits = 350;
  report.bgp_cache_misses = 50;
  report.retries = 12;
  report.backoff_waits = 12;
  report.backoff_ticks = 768;
  report.recovered_targets = 4;
  report.worker_utilization = 0.85;
  report.tallies.push_back({"left_cloud", 0.75});
  return report;
}

TEST(Metrics, JsonEmitterWritesTheDocumentedSchema) {
  MetricsRegistry registry;
  registry.add("campaign.sweeps", 2);
  registry.set_gauge("stage.round1.wall_ms", 12.5);
  {
    MetricsRegistry::ScopedTimer timer(registry, "campaign.sweep");
  }

  MetricsMeta meta;
  meta.seed = 42;
  meta.threads = 4;
  meta.subject = "amazon";
  std::ostringstream out;
  write_metrics_json(out, meta, {sample_report()}, registry);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"cloudmap\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"subject\": \"amazon\""), std::string::npos);
  EXPECT_NE(json.find("\"round1\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"probes\": 9000"), std::string::npos);
  EXPECT_NE(json.find("\"bgp_cache_hits\": 350"), std::string::npos);
  EXPECT_NE(json.find("\"retries\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"backoff_waits\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"backoff_ticks\": 768"), std::string::npos);
  EXPECT_NE(json.find("\"recovered_targets\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"left_cloud\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"campaign.sweeps\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"campaign.sweep\""), std::string::npos);
  // Every quote in field values above parsed — now a structural sanity
  // check: braces balance.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Metrics, CsvEmitterWritesOneRowPerField) {
  std::ostringstream out;
  write_metrics_csv(out, {sample_report()});
  const std::string csv = out.str();
  EXPECT_NE(csv.find("stage,metric,value"), std::string::npos);
  EXPECT_NE(csv.find("round1,wall_ms,12.5"), std::string::npos);
  EXPECT_NE(csv.find("round1,probes,9000"), std::string::npos);
  EXPECT_NE(csv.find("round1,retries,12"), std::string::npos);
  EXPECT_NE(csv.find("round1,backoff_ticks,768"), std::string::npos);
  EXPECT_NE(csv.find("round1,recovered_targets,4"), std::string::npos);
  EXPECT_NE(csv.find("round1,tally.left_cloud,0.75"), std::string::npos);
}

TEST(Metrics, DeterministicModeRecordsCountsButNoTime) {
  MetricsRegistry registry;
  registry.set_deterministic(true);
  EXPECT_TRUE(registry.deterministic());
  for (int i = 0; i < 3; ++i) {
    MetricsRegistry::ScopedTimer timer(registry, "work");
    volatile std::size_t sink = 0;
    for (std::size_t k = 0; k < 10000; ++k) sink = sink + k;
  }
  EXPECT_EQ(registry.timer_count("work"), 3u);
  EXPECT_EQ(registry.timer_total_ns("work"), 0u);
  // Counters are structural, not wall-clock: unaffected by the mode.
  registry.add("events", 2);
  EXPECT_EQ(registry.counter_value("events"), 2u);
}

}  // namespace
}  // namespace cloudmap
