// Shared, lazily-built test fixtures. World generation and full pipeline
// runs are the expensive part of the suite; building each once and sharing
// across test files keeps the suite fast without sacrificing integration
// coverage.
#pragma once

#include "core/pipeline.h"
#include "topology/generator.h"

namespace cloudmap::testfx {

// A small world with every structural feature (seed-fixed).
inline const World& small_world() {
  static const World world = [] {
    GeneratorConfig config = GeneratorConfig::small();
    config.seed = 42;
    return generate_world(config);
  }();
  return world;
}

// A fully-run pipeline over the small world.
inline Pipeline& small_pipeline() {
  static Pipeline* pipeline = [] {
    auto* p = new Pipeline(small_world());
    p->run_all();
    return p;
  }();
  return *pipeline;
}

// A paper-shape world (larger; used by the heavier integration tests).
inline const World& paper_world() {
  static const World world = [] {
    GeneratorConfig config = GeneratorConfig::paper_shape();
    config.seed = 1;
    return generate_world(config);
  }();
  return world;
}

inline Pipeline& paper_pipeline() {
  static Pipeline* pipeline = [] {
    auto* p = new Pipeline(paper_world());
    p->run_all();
    return p;
  }();
  return *pipeline;
}

}  // namespace cloudmap::testfx
