// Pinning (§6): anchor quality, conservative propagation, regional fallback,
// cross-validation, ground-truth accuracy.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "pinning/evaluate.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

TEST(Pinning, AnchorsComeFromAllFourSources) {
  Pipeline& pipeline = small_pipeline();
  const AnchorSet& anchors = pipeline.anchors();
  EXPECT_GT(anchors.dns, 0u);
  EXPECT_GT(anchors.ixp, 0u);
  EXPECT_GT(anchors.native, 0u);
  // Metro-footprint anchors need single-metro ASes; the small world has
  // plenty of single-metro enterprises.
  EXPECT_GT(anchors.metro_footprint, 0u);
}

TEST(Pinning, AnchorsAreHighlyAccurate) {
  Pipeline& pipeline = small_pipeline();
  const World& world = pipeline.world();
  const AnchorSet& anchors = pipeline.anchors();
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& [address, anchor] : anchors.anchors) {
    const InterfaceId iface = world.find_interface(Ipv4(address));
    if (!iface.valid()) continue;
    ++total;
    if (world.router(world.interface(iface).router).metro == anchor.metro)
      ++correct;
  }
  ASSERT_GT(total, 10u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(Pinning, PropagationIsHighPrecision) {
  Pipeline& pipeline = small_pipeline();
  const GroundTruthAccuracy accuracy =
      score_against_truth(pipeline.world(), pipeline.pinning());
  EXPECT_GT(accuracy.pinned, 20u);
  // The paper's cross-validated precision is 99.3%; against ground truth we
  // demand a similar regime.
  EXPECT_GT(accuracy.accuracy, 0.85);
}

TEST(Pinning, PinsCoverBothAbisAndCbis) {
  Pipeline& pipeline = small_pipeline();
  const auto abis = pipeline.campaign().fabric().unique_abis();
  const auto cbis = pipeline.campaign().fabric().unique_cbis();
  std::size_t pinned_abis = 0;
  std::size_t pinned_cbis = 0;
  for (const auto& [address, pin] : pipeline.pinning().pins) {
    (void)pin;
    if (abis.count(address)) ++pinned_abis;
    if (cbis.count(address)) ++pinned_cbis;
  }
  EXPECT_GT(pinned_abis, 0u);
  EXPECT_GT(pinned_cbis, 0u);
}

TEST(Pinning, RegionalFallbackOnlyCoversUnpinned) {
  Pipeline& pipeline = small_pipeline();
  const PinningResult& result = pipeline.pinning();
  for (const auto& [address, region] : result.regional) {
    (void)region;
    EXPECT_EQ(result.pins.count(address), 0u);
  }
}

TEST(Pinning, RegionalAssignmentsAreAmazonRegions) {
  Pipeline& pipeline = small_pipeline();
  const World& world = pipeline.world();
  for (const auto& [address, region_value] : pipeline.pinning().regional) {
    (void)address;
    ASSERT_LT(region_value, world.regions.size());
    EXPECT_EQ(world.regions[region_value].provider, CloudProvider::kAmazon);
  }
}

TEST(Pinning, RttRatiosAreAtLeastOne) {
  Pipeline& pipeline = small_pipeline();
  for (const double ratio : pipeline.pinning().rtt_ratios)
    EXPECT_GE(ratio, 1.0);
}

TEST(Pinning, CrossValidationPrecisionHigh) {
  Pipeline& pipeline = small_pipeline();
  const CrossValidationResult cv = cross_validate(
      pipeline.mutable_pinner(), pipeline.anchors(), /*folds=*/4, 0.3, 29);
  EXPECT_GT(cv.folds, 0);
  EXPECT_GT(cv.precision_mean, 0.8);
  EXPECT_GT(cv.recall_mean, 0.0);
  EXPECT_LE(cv.recall_mean, 1.0);
}

TEST(Pinning, CoverageAgainstCloudMetros) {
  Pipeline& pipeline = small_pipeline();
  const CoverageResult coverage =
      geographic_coverage(pipeline.world(), pipeline.peeringdb(),
                          CloudProvider::kAmazon, pipeline.pinning());
  EXPECT_GT(coverage.cloud_metros, 0u);
  EXPECT_GT(coverage.covered, 0u);
  EXPECT_EQ(coverage.covered + coverage.missing.size(),
            coverage.cloud_metros);
}

TEST(Pinning, TighterThresholdPinsFewer) {
  Pipeline& pipeline = small_pipeline();
  Pinner::Inputs inputs;
  inputs.fabric = &pipeline.campaign().fabric();
  const Annotator annotator = pipeline.annotator();
  inputs.annotator = &annotator;
  inputs.peeringdb = &pipeline.peeringdb();
  inputs.dns = &pipeline.dns();
  inputs.aliases = &pipeline.alias_sets();
  inputs.world = &pipeline.world();
  inputs.rtts = &pipeline.mutable_rtts();
  inputs.vps = &pipeline.campaign().vantage_points();

  PinningOptions loose;
  loose.copresence_ms = 2.0;
  PinningOptions tight;
  tight.copresence_ms = 0.2;
  Pinner loose_pinner(inputs, loose);
  Pinner tight_pinner(inputs, tight);
  const PinningResult loose_result = loose_pinner.run();
  const PinningResult tight_result = tight_pinner.run();
  EXPECT_LE(tight_result.pinned_by_rtt, loose_result.pinned_by_rtt);
}

TEST(Pinning, AnchorConsistencyFiltersApplied) {
  Pipeline& pipeline = small_pipeline();
  const AnchorSet& anchors = pipeline.anchors();
  // Exclusion counters are tracked (values can be zero in a small world but
  // the DNS feasibility check must have seen candidates).
  EXPECT_GE(anchors.dns_rtt_excluded + anchors.ixp_remote_excluded +
                anchors.conflict_evidence + anchors.conflict_alias,
            0u);
  // All surviving anchors carry a valid source and metro.
  for (const auto& [address, anchor] : anchors.anchors) {
    (void)address;
    EXPECT_NE(anchor.source, AnchorSource::kNone);
    EXPECT_TRUE(anchor.metro.valid());
  }
}

}  // namespace
}  // namespace cloudmap
