// Campaign integration: rounds, expansion, Table-1 style accounting.
#include <gtest/gtest.h>

#include "fixtures.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

TEST(Campaign, RoundOneLeavesTheCloudMostly) {
  Pipeline& pipeline = small_pipeline();
  // The paper reports ~77% of traceroutes leaving Amazon; the synthetic
  // world is in the same regime.
  EXPECT_GT(pipeline.round1().left_cloud_fraction(), 0.5);
  EXPECT_GT(pipeline.round1().traceroutes, 1000u);
}

TEST(Campaign, ExpansionAddsCbis) {
  Pipeline& pipeline = small_pipeline();
  // first_round markers: some segments were only found in round 2.
  std::size_t round2_only = 0;
  for (const InferredSegment& segment :
       pipeline.campaign().fabric().segments())
    if (segment.first_round == 2) ++round2_only;
  EXPECT_GT(round2_only, 0u);
}

TEST(Campaign, ExpansionTargetsAvoidKnownCbisAndDotOne) {
  Pipeline& pipeline = small_pipeline();
  const auto cbis = pipeline.campaign().fabric().unique_cbis();
  const auto targets = pipeline.campaign().expansion_targets();
  EXPECT_GT(targets.size(), 0u);
  for (const Ipv4 target : targets) {
    EXPECT_EQ(cbis.count(target.value()), 0u);
    EXPECT_NE(target.value() & 0xFF, 1u);  // .1 was swept in round 1
    EXPECT_NE(target.value() & 0xFF, 0u);
    EXPECT_NE(target.value() & 0xFF, 255u);
  }
}

TEST(Campaign, InterfaceStatsSumBelowOne) {
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  const auto row = Campaign::interface_stats(
      pipeline.campaign().fabric().unique_cbis(), annotator);
  EXPECT_EQ(row.total, pipeline.campaign().fabric().unique_cbis().size());
  EXPECT_LE(row.bgp_fraction + row.whois_fraction + row.ixp_fraction, 1.0001);
  EXPECT_GT(row.bgp_fraction, 0.0);
  EXPECT_GT(row.ixp_fraction, 0.0);
}

TEST(Campaign, AbiAddressesAreCloudOrUnknownOwned) {
  // ABIs (pre-correction artifacts aside) must never be annotated with a
  // non-Amazon client ASN after verification.
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  const OrgId amazon_org = pipeline.campaign().subject_org();
  std::size_t client_owned = 0;
  std::size_t total = 0;
  for (const std::uint32_t abi : pipeline.campaign().fabric().unique_abis()) {
    const HopAnnotation a = annotator.annotate(Ipv4(abi));
    ++total;
    if (!a.org.is_unknown() && a.org != amazon_org) ++client_owned;
  }
  EXPECT_GT(total, 0u);
  // A small residue can survive (the paper's unconfirmed 9.8%).
  EXPECT_LT(static_cast<double>(client_owned) / static_cast<double>(total),
            0.35);
}

TEST(Campaign, PeerAsnCountPositive) {
  Pipeline& pipeline = small_pipeline();
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  EXPECT_GT(pipeline.campaign().peer_asn_count(annotator), 5u);
}

TEST(Campaign, HeuristicsConfirmMostAbis) {
  Pipeline& pipeline = small_pipeline();
  const HeuristicCounts& counts = pipeline.heuristics();
  const std::size_t confirmed = counts.cum_ixp_abis + counts.cum_hybrid_abis +
                                counts.cum_reachable_abis;
  EXPECT_GT(counts.total_abis, 0u);
  // The paper confirms 87.8% of ABIs; demand a healthy majority here.
  EXPECT_GT(static_cast<double>(confirmed) /
                static_cast<double>(confirmed + counts.unconfirmed_abis),
            0.6);
}

TEST(Campaign, CumulativeCountsAreOrderedByConfidence) {
  Pipeline& pipeline = small_pipeline();
  const HeuristicCounts& counts = pipeline.heuristics();
  // Individual counts can only exceed or equal the cumulative ones (later
  // heuristics only see what earlier ones left unconfirmed).
  EXPECT_GE(counts.hybrid_abis + counts.ixp_abis + counts.reachable_abis,
            counts.cum_hybrid_abis + counts.cum_ixp_abis +
                counts.cum_reachable_abis);
  EXPECT_EQ(counts.ixp_abis, counts.cum_ixp_abis);  // first in order
}

TEST(Campaign, AliasVerificationIsConservative) {
  Pipeline& pipeline = small_pipeline();
  const AliasVerifyStats& stats = pipeline.alias_verification();
  EXPECT_GT(stats.sets, 0u);
  EXPECT_GT(stats.majority_fraction, 0.6);
  // Corrections are few relative to the fabric (paper: 45 of 8.68k).
  const std::size_t corrections =
      stats.abi_to_cbi + stats.cbi_to_abi + stats.cbi_to_cbi;
  EXPECT_LT(corrections, stats.interfaces_in_sets / 2 + 10);
}

TEST(Campaign, ScoreIsReasonable) {
  Pipeline& pipeline = small_pipeline();
  const InferenceScore score = pipeline.score();
  EXPECT_GT(score.discoverable_interconnects, 0u);
  EXPECT_GT(score.recall(), 0.25);
  EXPECT_GT(score.router_recall(), 0.4);
  EXPECT_GT(score.precision(), 0.4);
  EXPECT_GT(score.router_precision(), 0.5);
}

TEST(Campaign, PrivateVpisAreNeverDiscovered) {
  Pipeline& pipeline = small_pipeline();
  const World& world = pipeline.world();
  const auto cbis = pipeline.campaign().fabric().unique_cbis();
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (!ic.private_address) continue;
    const Ipv4 client = world.interface(ic.client_interface).address;
    EXPECT_EQ(cbis.count(client.value()), 0u) << client.to_string();
  }
}

}  // namespace
}  // namespace cloudmap
