// §5.2 alias verification on crafted fabrics: majority-ownership corrections
// in each direction.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "infer/alias_verify.h"

namespace cloudmap {
namespace {

using testfx::small_pipeline;

class AliasVerifyUnit : public ::testing::Test {
 protected:
  AliasVerifyUnit()
      : pipeline_(small_pipeline()), annotator_(pipeline_.annotator()) {
    annotator_.set_snapshot(&pipeline_.snapshot_round2());
  }

  static CandidateSegment candidate(Ipv4 prior, Ipv4 abi, Ipv4 cbi,
                                    Ipv4 post) {
    CandidateSegment c;
    c.prior_abi = prior;
    c.abi = abi;
    c.cbi = cbi;
    c.post_cbi = post;
    c.destination = Ipv4(20, 99, 0, 1);
    return c;
  }

  Pipeline& pipeline_;
  Annotator annotator_;
};

TEST_F(AliasVerifyUnit, RealInterconnectInterfacesStayPut) {
  // Build a fabric of genuinely correct segments: the true (cloud, client)
  // interface pairs of planted interconnects. Alias verification must not
  // rewrite them.
  const World& world = pipeline_.world();
  Fabric fabric;
  std::size_t added = 0;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.cloud != CloudProvider::kAmazon || ic.private_address) continue;
    if (ic.kind != PeeringKind::kCrossConnect || ic.cloud_provided_subnet)
      continue;
    fabric.add_segment(
        candidate(Ipv4(10, 0, 0, 1),
                  world.interface(ic.cloud_interface).address,
                  world.interface(ic.client_interface).address, Ipv4{}),
        1);
    if (++added > 40) break;
  }
  ASSERT_GT(added, 5u);
  const std::size_t before = fabric.segments().size();

  AliasVerifier verifier(pipeline_.forwarder(), annotator_,
                         pipeline_.campaign().subject_org());
  const AliasVerifyStats stats =
      verifier.apply(fabric, pipeline_.campaign().vantage_points());
  EXPECT_EQ(fabric.segments().size(), before);
  EXPECT_EQ(stats.abi_to_cbi, 0u);
  // Note: cloud interfaces here are the /30 addresses (cloud side), owned
  // by the subject — never relabeled toward the client.
}

TEST_F(AliasVerifyUnit, StatsCountRolesSeparately) {
  Pipeline& p = small_pipeline();
  const AliasVerifyStats& stats = p.alias_verification();
  EXPECT_LE(stats.abis_in_sets + stats.cbis_in_sets,
            stats.interfaces_in_sets);
  EXPECT_LE(stats.majority_fraction, 1.0);
  EXPECT_LE(stats.unanimous_fraction, stats.majority_fraction + 1e-9);
}

TEST_F(AliasVerifyUnit, SetsAreExposedForPinning) {
  Pipeline& p = small_pipeline();
  const AliasSets& sets = p.alias_sets();
  for (const auto& set : sets.sets) EXPECT_GE(set.size(), 2u);
  // Pinning's Rule 1 consumed these: pinned-by-alias implies sets exist.
  if (p.pinning().pinned_by_alias > 0) {
    EXPECT_FALSE(sets.sets.empty());
  }
}

}  // namespace
}  // namespace cloudmap
