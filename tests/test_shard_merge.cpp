// The sharded-campaign determinism invariant (io/shard.h): splitting the
// campaign across N shard processes and merging their parts produces a
// snapshot byte-identical to a single-process run, at any shard count and
// any thread count — plus the merge-side rejection of truncated, duplicate,
// and inconsistent parts.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fixtures.h"
#include "io/shard.h"
#include "io/snapshot.h"

namespace cloudmap {
namespace {

constexpr std::uint64_t kDigest = 0x5EEDD16E57ull;

PipelineOptions shard_test_options(int threads) {
  PipelineOptions options;
  // Byte-identity is asserted on snapshot files, so every wall-clock and
  // execution-environment metrics field must be normalized away.
  options.deterministic_metrics = true;
  options.campaign.threads = threads;
  return options;
}

// Run one round's shard process in-process: probe the owned work items and
// stream them to a part file, exactly like `cloudmap_cli campaign --shard`.
void run_shard_round(const World& world, const PipelineOptions& base,
                     int round, int index, int count,
                     const std::string& prefix) {
  PipelineOptions options = base;
  options.campaign.shard_index = index;
  options.campaign.shard_count = count;
  Pipeline pipeline(world, options);
  Campaign& campaign = pipeline.mutable_campaign();

  if (round == 2) {
    // Round 2 derives targets from the round-1 fabric: absorb the merged
    // round-1 parts first, as every shard process does.
    std::vector<std::string> paths;
    for (int s = 0; s < count; ++s)
      paths.push_back(shard_part_path(prefix, 1, s, count));
    ShardMerge merged;
    std::string error;
    ASSERT_TRUE(merged.open(paths, &error)) << error;
    campaign.absorb_round1(
        [&merged](Campaign::SweepChunkResult& r) { return merged.next(r); });
  }

  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(round == 1 ? &pipeline.snapshot_round1()
                                    : &pipeline.snapshot_round2());
  const std::vector<Ipv4> targets =
      round == 1 ? campaign.round1_targets() : campaign.expansion_targets();

  ShardPartHeader header;
  header.config_digest = kDigest;
  header.round = static_cast<std::uint32_t>(round);
  header.shard_index = static_cast<std::uint32_t>(index);
  header.shard_count = static_cast<std::uint32_t>(count);
  header.total_items = campaign.sweep_item_count(targets.size());
  header.target_count = targets.size();

  ShardPartWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(shard_part_path(prefix, round, index, count),
                          header, &error))
      << error;
  const Campaign::ShardSink sink =
      [&](std::uint64_t item, const Campaign::SweepChunkResult& result) {
        EXPECT_TRUE(writer.append(item, result, &error)) << error;
      };
  if (round == 1)
    campaign.run_round1_shard(annotator, sink);
  else
    campaign.run_round2_shard(annotator, sink);
  ASSERT_TRUE(writer.finish(&error)) << error;
}

std::vector<std::string> part_paths(const std::string& prefix, int round,
                                    int count) {
  std::vector<std::string> paths;
  for (int s = 0; s < count; ++s)
    paths.push_back(shard_part_path(prefix, round, s, count));
  return paths;
}

// The whole protocol: N round-1 shards, N round-2 shards, one merge process
// running the remaining stages. Returns the merged snapshot's bytes.
std::string sharded_snapshot_bytes(const World& world, int count, int threads,
                                   const std::string& prefix) {
  const PipelineOptions base = shard_test_options(threads);
  for (int i = 0; i < count; ++i)
    run_shard_round(world, base, 1, i, count, prefix);
  for (int i = 0; i < count; ++i)
    run_shard_round(world, base, 2, i, count, prefix);

  ShardMerge round1_parts;
  ShardMerge round2_parts;
  std::string error;
  EXPECT_TRUE(round1_parts.open(part_paths(prefix, 1, count), &error))
      << error;
  EXPECT_TRUE(round2_parts.open(part_paths(prefix, 2, count), &error))
      << error;
  Pipeline merged(world, shard_test_options(threads));
  merged.set_absorb_sources(
      [&round1_parts](Campaign::SweepChunkResult& r) {
        return round1_parts.next(r);
      },
      [&round2_parts](Campaign::SweepChunkResult& r) {
        return round2_parts.next(r);
      });
  std::ostringstream out;
  save_snapshot(out, merged.run_snapshot());
  return out.str();
}

std::string single_process_snapshot_bytes(const World& world, int threads) {
  Pipeline pipeline(world, shard_test_options(threads));
  std::ostringstream out;
  save_snapshot(out, pipeline.run_snapshot());
  return out.str();
}

// The tentpole invariant, the full matrix the issue names: shards in
// {1, 2, 4} × threads in {1, 4}, every combination byte-identical to the
// single-process single-threaded snapshot.
TEST(ParallelCampaignShard, MergedSnapshotMatchesSingleProcessByteForByte) {
  const World& world = testfx::small_world();
  const std::string baseline = single_process_snapshot_bytes(world, 1);
  ASSERT_FALSE(baseline.empty());
  // Thread-count identity of the single-process path (the normalized stage
  // metrics are what make this hold for snapshot BYTES, not just results).
  EXPECT_EQ(single_process_snapshot_bytes(world, 4), baseline);

  for (const int count : {1, 2, 4}) {
    for (const int threads : {1, 4}) {
      const std::string prefix = testing::TempDir() + "shardcamp_n" +
                                 std::to_string(count) + "_t" +
                                 std::to_string(threads);
      const std::string merged =
          sharded_snapshot_bytes(world, count, threads, prefix);
      EXPECT_EQ(merged, baseline)
          << "sharded run diverged at " << count << " shards, " << threads
          << " threads";
    }
  }
}

// --- merge-side rejection ------------------------------------------------

// Produce a valid 2-shard round-1 part set once for the rejection tests.
class ShardMergeRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = testing::TempDir() + "shardrej";
    const World& world = testfx::small_world();
    const PipelineOptions base = shard_test_options(1);
    run_shard_round(world, base, 1, 0, 2, prefix_);
    run_shard_round(world, base, 1, 1, 2, prefix_);
  }
  std::string prefix_;
};

TEST_F(ShardMergeRejection, DuplicatePartIsRejected) {
  const std::string part0 = shard_part_path(prefix_, 1, 0, 2);
  ShardMerge merge;
  std::string error;
  EXPECT_FALSE(merge.open({part0, part0}, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST_F(ShardMergeRejection, MissingPartIsRejected) {
  ShardMerge merge;
  std::string error;
  // One part of a two-shard set: the declared shard count disagrees with
  // the number of parts offered.
  EXPECT_FALSE(merge.open({shard_part_path(prefix_, 1, 0, 2)}, &error));
  EXPECT_NE(error.find("declare"), std::string::npos) << error;
}

TEST_F(ShardMergeRejection, UnfinishedPartIsRejected) {
  // A part whose writer never ran finish() keeps record_count = 0 in the
  // header (with the CRC the writer stamped at open) — the coverage check
  // must refuse it up front.
  const std::string path = shard_part_path(prefix_, 1, 0, 2);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 56u);
  for (std::size_t i = 44; i < 52; ++i) bytes[i] = '\0';  // record count
  const std::uint32_t crc = snapshot_crc32(
      reinterpret_cast<const unsigned char*>(bytes.data()), 52);
  for (std::size_t i = 0; i < 4; ++i)
    bytes[52 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  const std::string broken = prefix_ + ".unfinished.part";
  std::ofstream out(broken, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  ShardMerge merge;
  std::string error;
  EXPECT_FALSE(
      merge.open({broken, shard_part_path(prefix_, 1, 1, 2)}, &error));
  EXPECT_NE(error.find("truncated or unfinished"), std::string::npos)
      << error;
}

TEST_F(ShardMergeRejection, TruncatedPartFailsWithDiagnostic) {
  // Chop the tail off a finished part: the header still promises the full
  // record count, so the failure surfaces as a mid-stream read error with
  // the part path and record position in the message.
  const std::string path = shard_part_path(prefix_, 1, 1, 2);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 100u);
  bytes.resize(bytes.size() - 37);
  const std::string broken = prefix_ + ".truncated.part";
  std::ofstream out(broken, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  ShardMerge merge;
  std::string error;
  ASSERT_TRUE(
      merge.open({shard_part_path(prefix_, 1, 0, 2), broken}, &error))
      << error;
  Campaign::SweepChunkResult result;
  try {
    while (merge.next(result)) {
    }
    FAIL() << "truncated part was consumed without a diagnostic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(broken), std::string::npos)
        << e.what();
  }
}

TEST_F(ShardMergeRejection, CorruptRecordFailsCrc) {
  const std::string path = shard_part_path(prefix_, 1, 0, 2);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 80u);
  bytes[70] = static_cast<char>(bytes[70] ^ 0x40);  // flip a payload bit
  const std::string broken = prefix_ + ".corrupt.part";
  std::ofstream out(broken, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  ShardPartReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(broken, &error)) << error;
  std::uint64_t item = 0;
  Campaign::SweepChunkResult result;
  try {
    while (reader.next(item, result)) {
    }
    FAIL() << "corrupt record passed CRC";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST_F(ShardMergeRejection, MismatchedHeadersAreRejected) {
  // A round-2 part offered alongside a round-1 part: same digest, same
  // world — still refused, the headers disagree.
  const World& world = testfx::small_world();
  run_shard_round(world, shard_test_options(1), 2, 0, 2, prefix_);
  ShardMerge merge;
  std::string error;
  EXPECT_FALSE(merge.open({shard_part_path(prefix_, 1, 0, 2),
                           shard_part_path(prefix_, 2, 0, 2)},
                          &error));
  EXPECT_NE(error.find("disagrees"), std::string::npos) << error;
}

}  // namespace
}  // namespace cloudmap
