// Fabric: segment dedup, adjacency tracking, shift/advance edits.
#include <gtest/gtest.h>

#include "infer/fabric.h"

namespace cloudmap {
namespace {

CandidateSegment make_candidate(std::uint32_t prior, std::uint32_t abi,
                                std::uint32_t cbi, std::uint32_t post,
                                std::uint32_t dst = 0x14000001) {
  CandidateSegment c;
  c.prior_abi = Ipv4(prior);
  c.abi = Ipv4(abi);
  c.cbi = Ipv4(cbi);
  c.post_cbi = Ipv4(post);
  c.destination = Ipv4(dst);
  c.region = RegionId{0};
  return c;
}

TEST(Fabric, DeduplicatesByAbiCbiPair) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 4), 1);
  fabric.add_segment(make_candidate(1, 2, 3, 4, 0x14000002), 2);
  fabric.add_segment(make_candidate(1, 2, 5, 4), 1);
  EXPECT_EQ(fabric.segments().size(), 2u);
  EXPECT_EQ(fabric.unique_abis().size(), 1u);
  EXPECT_EQ(fabric.unique_cbis().size(), 2u);
  // First-round provenance is kept.
  EXPECT_EQ(fabric.segments()[0].first_round, 1);
  EXPECT_EQ(fabric.segments()[0].dest_slash24s.size(), 1u);  // same /24
}

TEST(Fabric, TracksDestinationSlash24s) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 4, 0x14000001), 1);
  fabric.add_segment(make_candidate(1, 2, 3, 4, 0x14000101), 1);
  EXPECT_EQ(fabric.segments()[0].dest_slash24s.size(), 2u);
}

TEST(Fabric, SampleDestinationsAreCapped) {
  Fabric fabric;
  for (std::uint32_t i = 0; i < 10; ++i)
    fabric.add_segment(make_candidate(1, 2, 3, 4, 0x14000001 + i * 7), 1);
  EXPECT_EQ(fabric.segments()[0].sample_destinations.size(),
            Fabric::kMaxSampleDests);
}

TEST(Fabric, AdjacencyAccumulates) {
  Fabric fabric;
  fabric.add_adjacency(Ipv4(1), Ipv4(2));
  fabric.add_adjacency(Ipv4(1), Ipv4(3));
  fabric.add_adjacency(Ipv4(1), Ipv4(2));
  const auto* successors = fabric.successors_of(Ipv4(1));
  ASSERT_NE(successors, nullptr);
  EXPECT_EQ(successors->size(), 2u);
  EXPECT_EQ(fabric.successors_of(Ipv4(9)), nullptr);
}

TEST(Fabric, ShiftRewritesSegment) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 4), 1);
  ASSERT_TRUE(fabric.shift_segment(0, Confirmation::kHybrid));
  const InferredSegment& segment = fabric.segments()[0];
  EXPECT_EQ(segment.abi, Ipv4(1));
  EXPECT_EQ(segment.cbi, Ipv4(2));
  EXPECT_EQ(segment.post_cbi, Ipv4(3));
  EXPECT_TRUE(segment.shifted);
  EXPECT_EQ(segment.confirmation, Confirmation::kHybrid);
}

TEST(Fabric, ShiftWithoutPriorFails) {
  Fabric fabric;
  fabric.add_segment(make_candidate(0, 2, 3, 4), 1);
  EXPECT_FALSE(fabric.shift_segment(0, Confirmation::kHybrid));
}

TEST(Fabric, ShiftMergesIntoExistingSegment) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 4), 1);   // will shift to (1,2)
  fabric.add_segment(make_candidate(0, 1, 2, 3), 1);   // already (1,2)
  ASSERT_TRUE(fabric.shift_segment(0, Confirmation::kHybrid));
  fabric.compact();
  EXPECT_EQ(fabric.segments().size(), 1u);
  EXPECT_EQ(fabric.segments()[0].abi, Ipv4(1));
  EXPECT_EQ(fabric.segments()[0].cbi, Ipv4(2));
}

TEST(Fabric, AdvanceRewritesSegment) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 4), 1);
  ASSERT_TRUE(fabric.advance_segment(0, Confirmation::kAliasRelabel));
  const InferredSegment& segment = fabric.segments()[0];
  EXPECT_EQ(segment.abi, Ipv4(3));
  EXPECT_EQ(segment.cbi, Ipv4(4));
}

TEST(Fabric, AdvanceWithoutPostFails) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 0), 1);
  EXPECT_FALSE(fabric.advance_segment(0, Confirmation::kAliasRelabel));
}

TEST(Fabric, CompactRemovesTombstones) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 4), 1);
  fabric.add_segment(make_candidate(0, 1, 2, 3), 1);
  fabric.add_segment(make_candidate(5, 6, 7, 8), 1);
  fabric.shift_segment(0, Confirmation::kHybrid);  // merges into (1,2)
  fabric.compact();
  EXPECT_EQ(fabric.segments().size(), 2u);
  // Index still works after compaction: re-adding dedups correctly.
  fabric.add_segment(make_candidate(5, 6, 7, 8), 2);
  EXPECT_EQ(fabric.segments().size(), 2u);
}

TEST(Fabric, GroupingByAbiAndCbi) {
  Fabric fabric;
  fabric.add_segment(make_candidate(1, 2, 3, 0), 1);
  fabric.add_segment(make_candidate(1, 2, 4, 0), 1);
  fabric.add_segment(make_candidate(1, 5, 3, 0), 1);
  const auto by_abi = fabric.by_abi();
  EXPECT_EQ(by_abi.size(), 2u);
  EXPECT_EQ(by_abi.at(2).size(), 2u);
  const auto by_cbi = fabric.by_cbi();
  EXPECT_EQ(by_cbi.size(), 2u);
  EXPECT_EQ(by_cbi.at(3).size(), 2u);
}

}  // namespace
}  // namespace cloudmap
