// Ground-truth world generation invariants.
#include <gtest/gtest.h>

#include <unordered_set>

#include "topology/generator.h"

namespace cloudmap {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config = GeneratorConfig::small();
    config.seed = 7;
    world_ = new World(generate_world(config));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};
World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, InternallyConsistent) {
  EXPECT_EQ(world_->validate(), "");
}

TEST_F(WorldTest, HasAllEntityClasses) {
  EXPECT_GT(world_->metros.size(), 0u);
  EXPECT_GT(world_->colos.size(), 0u);
  EXPECT_GT(world_->ixps.size(), 0u);
  EXPECT_GT(world_->regions.size(), 0u);
  EXPECT_GT(world_->ases.size(), 0u);
  EXPECT_GT(world_->routers.size(), 0u);
  EXPECT_GT(world_->interfaces.size(), 0u);
  EXPECT_GT(world_->links.size(), 0u);
  EXPECT_GT(world_->interconnects.size(), 0u);
}

TEST_F(WorldTest, EveryCloudHasRegionsAndBorders) {
  for (int p = 1; p < static_cast<int>(kCloudProviderCount); ++p) {
    const auto provider = static_cast<CloudProvider>(p);
    EXPECT_FALSE(world_->regions_of(provider).empty())
        << to_string(provider);
    EXPECT_FALSE(world_->cloud_ases[p].empty()) << to_string(provider);
  }
}

TEST_F(WorldTest, AmazonHasConfiguredRegionCount) {
  EXPECT_EQ(world_->regions_of(CloudProvider::kAmazon).size(), 4u);
}

TEST_F(WorldTest, InterconnectKindsAllPresent) {
  bool has_public = false;
  bool has_xconnect = false;
  bool has_vpi = false;
  bool has_private_vpi = false;
  bool has_remote = false;
  bool has_shared_port = false;
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.kind == PeeringKind::kPublicIxp) has_public = true;
    if (ic.kind == PeeringKind::kCrossConnect) has_xconnect = true;
    if (ic.kind == PeeringKind::kVpi) has_vpi = true;
    if (ic.private_address) has_private_vpi = true;
    if (ic.remote) has_remote = true;
    if (ic.shared_port_address) has_shared_port = true;
  }
  EXPECT_TRUE(has_public);
  EXPECT_TRUE(has_xconnect);
  EXPECT_TRUE(has_vpi);
  EXPECT_TRUE(has_private_vpi);
  EXPECT_TRUE(has_remote);
  EXPECT_TRUE(has_shared_port);
}

TEST_F(WorldTest, PrivateVpisUsePrivateAddressing) {
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (!ic.private_address) continue;
    const Ipv4 client =
        world_->interface(ic.client_interface).address;
    EXPECT_TRUE(client.is_private()) << client.to_string();
  }
}

TEST_F(WorldTest, SharedPortVpisReuseOneAddress) {
  // Every shared-port VPI client interface address appears on all of that
  // client's shared-port VPIs at the same colo (the overlap signal).
  std::unordered_set<std::uint32_t> shared_addresses;
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    if (ic.kind == PeeringKind::kVpi && ic.shared_port_address)
      shared_addresses.insert(
          world_->interface(ic.client_interface).address.value());
  }
  // At least one address is reused by ≥2 interconnects (multi-cloud port).
  std::size_t reused = 0;
  for (const std::uint32_t address : shared_addresses) {
    std::size_t uses = 0;
    for (const GroundTruthInterconnect& ic : world_->interconnects) {
      if (ic.kind == PeeringKind::kVpi && ic.shared_port_address &&
          world_->interface(ic.client_interface).address.value() == address)
        ++uses;
    }
    if (uses >= 2) ++reused;
  }
  EXPECT_GT(reused, 0u);
}

TEST_F(WorldTest, DeterministicUnderSeed) {
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 7;
  const World again = generate_world(config);
  EXPECT_EQ(again.interfaces.size(), world_->interfaces.size());
  EXPECT_EQ(again.links.size(), world_->links.size());
  EXPECT_EQ(again.interconnects.size(), world_->interconnects.size());
  for (std::size_t i = 0; i < again.interfaces.size(); ++i) {
    ASSERT_EQ(again.interfaces[i].address, world_->interfaces[i].address);
  }
}

TEST_F(WorldTest, DifferentSeedsDiffer) {
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 8;
  const World other = generate_world(config);
  bool differs = other.interfaces.size() != world_->interfaces.size();
  if (!differs) {
    for (std::size_t i = 0; i < other.interfaces.size(); ++i) {
      if (other.interfaces[i].address != world_->interfaces[i].address) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(WorldTest, ProbeableSlash24sAreUniqueAndPublic) {
  const auto targets = world_->probeable_slash24s();
  std::unordered_set<std::uint32_t> seen;
  for (const Prefix& prefix : targets) {
    EXPECT_EQ(prefix.length(), 24);
    EXPECT_FALSE(prefix.network().is_private());
    EXPECT_FALSE(prefix.network().is_shared());
    EXPECT_TRUE(seen.insert(prefix.network().value()).second);
  }
  EXPECT_GT(targets.size(), 100u);
}

TEST_F(WorldTest, InterconnectClientInterfaceOwnedByClient) {
  for (const GroundTruthInterconnect& ic : world_->interconnects) {
    const RouterId router = world_->interface(ic.client_interface).router;
    EXPECT_EQ(world_->router_owner(router), ic.client);
  }
}

}  // namespace
}  // namespace cloudmap
