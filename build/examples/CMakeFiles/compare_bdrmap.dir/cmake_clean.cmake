file(REMOVE_RECURSE
  "CMakeFiles/compare_bdrmap.dir/compare_bdrmap.cpp.o"
  "CMakeFiles/compare_bdrmap.dir/compare_bdrmap.cpp.o.d"
  "compare_bdrmap"
  "compare_bdrmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_bdrmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
