# Empty dependencies file for compare_bdrmap.
# This may be replaced when dependencies are built.
