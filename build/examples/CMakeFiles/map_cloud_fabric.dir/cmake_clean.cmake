file(REMOVE_RECURSE
  "CMakeFiles/map_cloud_fabric.dir/map_cloud_fabric.cpp.o"
  "CMakeFiles/map_cloud_fabric.dir/map_cloud_fabric.cpp.o.d"
  "map_cloud_fabric"
  "map_cloud_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_cloud_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
