# Empty compiler generated dependencies file for map_cloud_fabric.
# This may be replaced when dependencies are built.
