# Empty dependencies file for hidden_traffic_report.
# This may be replaced when dependencies are built.
