file(REMOVE_RECURSE
  "CMakeFiles/hidden_traffic_report.dir/hidden_traffic_report.cpp.o"
  "CMakeFiles/hidden_traffic_report.dir/hidden_traffic_report.cpp.o.d"
  "hidden_traffic_report"
  "hidden_traffic_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_traffic_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
