# Empty compiler generated dependencies file for cloudmap_cli.
# This may be replaced when dependencies are built.
