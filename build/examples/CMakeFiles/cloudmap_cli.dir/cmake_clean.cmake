file(REMOVE_RECURSE
  "CMakeFiles/cloudmap_cli.dir/cloudmap_cli.cpp.o"
  "CMakeFiles/cloudmap_cli.dir/cloudmap_cli.cpp.o.d"
  "cloudmap_cli"
  "cloudmap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudmap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
