# Empty compiler generated dependencies file for vpi_hunt.
# This may be replaced when dependencies are built.
