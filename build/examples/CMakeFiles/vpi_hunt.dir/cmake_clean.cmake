file(REMOVE_RECURSE
  "CMakeFiles/vpi_hunt.dir/vpi_hunt.cpp.o"
  "CMakeFiles/vpi_hunt.dir/vpi_hunt.cpp.o.d"
  "vpi_hunt"
  "vpi_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpi_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
