
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alias/midar.cpp" "src/CMakeFiles/cloudmap.dir/alias/midar.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/alias/midar.cpp.o.d"
  "/root/repo/src/analysis/dns_evidence.cpp" "src/CMakeFiles/cloudmap.dir/analysis/dns_evidence.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/analysis/dns_evidence.cpp.o.d"
  "/root/repo/src/analysis/features.cpp" "src/CMakeFiles/cloudmap.dir/analysis/features.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/analysis/features.cpp.o.d"
  "/root/repo/src/analysis/graph.cpp" "src/CMakeFiles/cloudmap.dir/analysis/graph.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/analysis/graph.cpp.o.d"
  "/root/repo/src/analysis/grouping.cpp" "src/CMakeFiles/cloudmap.dir/analysis/grouping.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/analysis/grouping.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/cloudmap.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/analysis/report.cpp.o.d"
  "/root/repo/src/baselines/mapit.cpp" "src/CMakeFiles/cloudmap.dir/baselines/mapit.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/baselines/mapit.cpp.o.d"
  "/root/repo/src/bdrmap/bdrmap.cpp" "src/CMakeFiles/cloudmap.dir/bdrmap/bdrmap.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/bdrmap/bdrmap.cpp.o.d"
  "/root/repo/src/controlplane/as2org.cpp" "src/CMakeFiles/cloudmap.dir/controlplane/as2org.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/controlplane/as2org.cpp.o.d"
  "/root/repo/src/controlplane/bgp.cpp" "src/CMakeFiles/cloudmap.dir/controlplane/bgp.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/controlplane/bgp.cpp.o.d"
  "/root/repo/src/controlplane/dns.cpp" "src/CMakeFiles/cloudmap.dir/controlplane/dns.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/controlplane/dns.cpp.o.d"
  "/root/repo/src/controlplane/peeringdb.cpp" "src/CMakeFiles/cloudmap.dir/controlplane/peeringdb.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/controlplane/peeringdb.cpp.o.d"
  "/root/repo/src/controlplane/whois.cpp" "src/CMakeFiles/cloudmap.dir/controlplane/whois.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/controlplane/whois.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/cloudmap.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/dataplane/forwarding.cpp" "src/CMakeFiles/cloudmap.dir/dataplane/forwarding.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/dataplane/forwarding.cpp.o.d"
  "/root/repo/src/dataplane/ping.cpp" "src/CMakeFiles/cloudmap.dir/dataplane/ping.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/dataplane/ping.cpp.o.d"
  "/root/repo/src/dataplane/traceroute.cpp" "src/CMakeFiles/cloudmap.dir/dataplane/traceroute.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/dataplane/traceroute.cpp.o.d"
  "/root/repo/src/infer/alias_verify.cpp" "src/CMakeFiles/cloudmap.dir/infer/alias_verify.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/infer/alias_verify.cpp.o.d"
  "/root/repo/src/infer/annotate.cpp" "src/CMakeFiles/cloudmap.dir/infer/annotate.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/infer/annotate.cpp.o.d"
  "/root/repo/src/infer/border.cpp" "src/CMakeFiles/cloudmap.dir/infer/border.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/infer/border.cpp.o.d"
  "/root/repo/src/infer/campaign.cpp" "src/CMakeFiles/cloudmap.dir/infer/campaign.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/infer/campaign.cpp.o.d"
  "/root/repo/src/infer/fabric.cpp" "src/CMakeFiles/cloudmap.dir/infer/fabric.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/infer/fabric.cpp.o.d"
  "/root/repo/src/infer/heuristics.cpp" "src/CMakeFiles/cloudmap.dir/infer/heuristics.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/infer/heuristics.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/cloudmap.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/io/serialize.cpp.o.d"
  "/root/repo/src/net/geo.cpp" "src/CMakeFiles/cloudmap.dir/net/geo.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/net/geo.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/cloudmap.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/CMakeFiles/cloudmap.dir/net/prefix.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/net/prefix.cpp.o.d"
  "/root/repo/src/pinning/cfs.cpp" "src/CMakeFiles/cloudmap.dir/pinning/cfs.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/pinning/cfs.cpp.o.d"
  "/root/repo/src/pinning/evaluate.cpp" "src/CMakeFiles/cloudmap.dir/pinning/evaluate.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/pinning/evaluate.cpp.o.d"
  "/root/repo/src/pinning/pinning.cpp" "src/CMakeFiles/cloudmap.dir/pinning/pinning.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/pinning/pinning.cpp.o.d"
  "/root/repo/src/topology/address_plan.cpp" "src/CMakeFiles/cloudmap.dir/topology/address_plan.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/topology/address_plan.cpp.o.d"
  "/root/repo/src/topology/entities.cpp" "src/CMakeFiles/cloudmap.dir/topology/entities.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/topology/entities.cpp.o.d"
  "/root/repo/src/topology/generator.cpp" "src/CMakeFiles/cloudmap.dir/topology/generator.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/topology/generator.cpp.o.d"
  "/root/repo/src/topology/world.cpp" "src/CMakeFiles/cloudmap.dir/topology/world.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/topology/world.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/cloudmap.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/cloudmap.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/util/table.cpp.o.d"
  "/root/repo/src/vpi/detector.cpp" "src/CMakeFiles/cloudmap.dir/vpi/detector.cpp.o" "gcc" "src/CMakeFiles/cloudmap.dir/vpi/detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
