file(REMOVE_RECURSE
  "libcloudmap.a"
)
