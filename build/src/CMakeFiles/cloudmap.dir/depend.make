# Empty dependencies file for cloudmap.
# This may be replaced when dependencies are built.
