
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_plan.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_address_plan.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_address_plan.cpp.o.d"
  "/root/repo/tests/test_alias_verify_unit.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_alias_verify_unit.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_alias_verify_unit.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_annotate.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_annotate.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_annotate.cpp.o.d"
  "/root/repo/tests/test_baselines_io.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_baselines_io.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_baselines_io.cpp.o.d"
  "/root/repo/tests/test_bdrmap.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_bdrmap.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_bdrmap.cpp.o.d"
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_border.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_border.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_border.cpp.o.d"
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_campaign_stats.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_campaign_stats.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_campaign_stats.cpp.o.d"
  "/root/repo/tests/test_cdf_and_knee.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_cdf_and_knee.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_cdf_and_knee.cpp.o.d"
  "/root/repo/tests/test_fabric.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_fabric.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_fabric.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_forwarding.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_forwarding.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_forwarding.cpp.o.d"
  "/root/repo/tests/test_forwarding_clouds.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_forwarding_clouds.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_forwarding_clouds.cpp.o.d"
  "/root/repo/tests/test_generator_properties.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_generator_properties.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_generator_properties.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_grouping_unit.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_grouping_unit.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_grouping_unit.cpp.o.d"
  "/root/repo/tests/test_heuristics.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_heuristics.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_heuristics.cpp.o.d"
  "/root/repo/tests/test_io_edge_cases.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_io_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_io_edge_cases.cpp.o.d"
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_ipv4.cpp.o.d"
  "/root/repo/tests/test_midar.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_midar.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_midar.cpp.o.d"
  "/root/repo/tests/test_pinning.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_pinning.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_pinning.cpp.o.d"
  "/root/repo/tests/test_pinning_anchors.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_pinning_anchors.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_pinning_anchors.cpp.o.d"
  "/root/repo/tests/test_pipeline_integration.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_pipeline_integration.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_pipeline_integration.cpp.o.d"
  "/root/repo/tests/test_prefix.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_prefix.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_prefix.cpp.o.d"
  "/root/repo/tests/test_prefix_trie.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_prefix_trie.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_prefix_trie.cpp.o.d"
  "/root/repo/tests/test_registries.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_registries.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_registries.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_traceroute.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_traceroute.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_traceroute.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vpi.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_vpi.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_vpi.cpp.o.d"
  "/root/repo/tests/test_vpi_detector_unit.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_vpi_detector_unit.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_vpi_detector_unit.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_world.cpp.o.d"
  "/root/repo/tests/test_world_accessors.cpp" "tests/CMakeFiles/cloudmap_tests.dir/test_world_accessors.cpp.o" "gcc" "tests/CMakeFiles/cloudmap_tests.dir/test_world_accessors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudmap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
