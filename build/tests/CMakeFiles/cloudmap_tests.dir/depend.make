# Empty dependencies file for cloudmap_tests.
# This may be replaced when dependencies are built.
