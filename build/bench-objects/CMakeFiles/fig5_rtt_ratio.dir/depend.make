# Empty dependencies file for fig5_rtt_ratio.
# This may be replaced when dependencies are built.
