# Empty compiler generated dependencies file for fig6_group_features.
# This may be replaced when dependencies are built.
