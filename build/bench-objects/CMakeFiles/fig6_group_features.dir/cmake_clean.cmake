file(REMOVE_RECURSE
  "../bench/fig6_group_features"
  "../bench/fig6_group_features.pdb"
  "CMakeFiles/fig6_group_features.dir/fig6_group_features.cpp.o"
  "CMakeFiles/fig6_group_features.dir/fig6_group_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_group_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
