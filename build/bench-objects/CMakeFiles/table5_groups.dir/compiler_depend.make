# Empty compiler generated dependencies file for table5_groups.
# This may be replaced when dependencies are built.
