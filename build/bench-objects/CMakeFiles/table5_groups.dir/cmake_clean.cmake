file(REMOVE_RECURSE
  "../bench/table5_groups"
  "../bench/table5_groups.pdb"
  "CMakeFiles/table5_groups.dir/table5_groups.cpp.o"
  "CMakeFiles/table5_groups.dir/table5_groups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
