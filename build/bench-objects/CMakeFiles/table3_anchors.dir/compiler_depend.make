# Empty compiler generated dependencies file for table3_anchors.
# This may be replaced when dependencies are built.
