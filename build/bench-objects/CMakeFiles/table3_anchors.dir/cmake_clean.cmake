file(REMOVE_RECURSE
  "../bench/table3_anchors"
  "../bench/table3_anchors.pdb"
  "CMakeFiles/table3_anchors.dir/table3_anchors.cpp.o"
  "CMakeFiles/table3_anchors.dir/table3_anchors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_anchors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
