file(REMOVE_RECURSE
  "../bench/table1_interfaces"
  "../bench/table1_interfaces.pdb"
  "CMakeFiles/table1_interfaces.dir/table1_interfaces.cpp.o"
  "CMakeFiles/table1_interfaces.dir/table1_interfaces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
