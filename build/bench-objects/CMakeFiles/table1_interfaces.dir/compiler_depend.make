# Empty compiler generated dependencies file for table1_interfaces.
# This may be replaced when dependencies are built.
