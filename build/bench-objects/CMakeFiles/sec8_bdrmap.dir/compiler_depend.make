# Empty compiler generated dependencies file for sec8_bdrmap.
# This may be replaced when dependencies are built.
