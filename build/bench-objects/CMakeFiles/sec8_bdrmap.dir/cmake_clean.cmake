file(REMOVE_RECURSE
  "../bench/sec8_bdrmap"
  "../bench/sec8_bdrmap.pdb"
  "CMakeFiles/sec8_bdrmap.dir/sec8_bdrmap.cpp.o"
  "CMakeFiles/sec8_bdrmap.dir/sec8_bdrmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_bdrmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
