file(REMOVE_RECURSE
  "../bench/sec62_pinning_eval"
  "../bench/sec62_pinning_eval.pdb"
  "CMakeFiles/sec62_pinning_eval.dir/sec62_pinning_eval.cpp.o"
  "CMakeFiles/sec62_pinning_eval.dir/sec62_pinning_eval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_pinning_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
