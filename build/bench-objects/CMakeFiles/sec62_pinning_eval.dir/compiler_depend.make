# Empty compiler generated dependencies file for sec62_pinning_eval.
# This may be replaced when dependencies are built.
