file(REMOVE_RECURSE
  "../bench/table4_vpi"
  "../bench/table4_vpi.pdb"
  "CMakeFiles/table4_vpi.dir/table4_vpi.cpp.o"
  "CMakeFiles/table4_vpi.dir/table4_vpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_vpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
