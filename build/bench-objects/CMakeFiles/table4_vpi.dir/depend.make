# Empty dependencies file for table4_vpi.
# This may be replaced when dependencies are built.
