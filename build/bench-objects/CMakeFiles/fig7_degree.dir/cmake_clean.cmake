file(REMOVE_RECURSE
  "../bench/fig7_degree"
  "../bench/fig7_degree.pdb"
  "CMakeFiles/fig7_degree.dir/fig7_degree.cpp.o"
  "CMakeFiles/fig7_degree.dir/fig7_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
