# Empty dependencies file for sec2_baselines.
# This may be replaced when dependencies are built.
