file(REMOVE_RECURSE
  "../bench/sec2_baselines"
  "../bench/sec2_baselines.pdb"
  "CMakeFiles/sec2_baselines.dir/sec2_baselines.cpp.o"
  "CMakeFiles/sec2_baselines.dir/sec2_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
