file(REMOVE_RECURSE
  "../bench/table2_heuristics"
  "../bench/table2_heuristics.pdb"
  "CMakeFiles/table2_heuristics.dir/table2_heuristics.cpp.o"
  "CMakeFiles/table2_heuristics.dir/table2_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
