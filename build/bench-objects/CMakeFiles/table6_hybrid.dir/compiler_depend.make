# Empty compiler generated dependencies file for table6_hybrid.
# This may be replaced when dependencies are built.
