file(REMOVE_RECURSE
  "../bench/table6_hybrid"
  "../bench/table6_hybrid.pdb"
  "CMakeFiles/table6_hybrid.dir/table6_hybrid.cpp.o"
  "CMakeFiles/table6_hybrid.dir/table6_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
