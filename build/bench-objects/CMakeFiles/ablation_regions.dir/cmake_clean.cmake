file(REMOVE_RECURSE
  "../bench/ablation_regions"
  "../bench/ablation_regions.pdb"
  "CMakeFiles/ablation_regions.dir/ablation_regions.cpp.o"
  "CMakeFiles/ablation_regions.dir/ablation_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
