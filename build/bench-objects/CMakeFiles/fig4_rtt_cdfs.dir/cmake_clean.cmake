file(REMOVE_RECURSE
  "../bench/fig4_rtt_cdfs"
  "../bench/fig4_rtt_cdfs.pdb"
  "CMakeFiles/fig4_rtt_cdfs.dir/fig4_rtt_cdfs.cpp.o"
  "CMakeFiles/fig4_rtt_cdfs.dir/fig4_rtt_cdfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rtt_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
