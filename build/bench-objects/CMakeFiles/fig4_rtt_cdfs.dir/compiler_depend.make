# Empty compiler generated dependencies file for fig4_rtt_cdfs.
# This may be replaced when dependencies are built.
