file(REMOVE_RECURSE
  "../bench/sec74_graph"
  "../bench/sec74_graph.pdb"
  "CMakeFiles/sec74_graph.dir/sec74_graph.cpp.o"
  "CMakeFiles/sec74_graph.dir/sec74_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec74_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
