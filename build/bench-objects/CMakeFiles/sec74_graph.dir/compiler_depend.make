# Empty compiler generated dependencies file for sec74_graph.
# This may be replaced when dependencies are built.
