// Longitudinal peering-turnover study: plant a churn hazard, run the full
// pipeline once per longitudinal world, persist the snapshot sequence
// (world_t0.snap ... world_tN.snap), and replay `cloudmap_cli diff` over
// consecutive editions to check the planted turnover events are
// reconstructed from the maps alone. Exits nonzero when any observable
// event fails to reconstruct — CI runs this as the churn acceptance gate.
//
//   longitudinal_churn [--out-dir DIR] [--profile SPEC] [--threads N]
//                      [--deterministic-metrics]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/options.h"
#include "io/snapshot.h"
#include "query/diff.h"
#include "scenario/score.h"

using namespace cloudmap;

int main(int argc, char** argv) {
  FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }

  std::string out_dir = ".";
  HazardProfile profile = *HazardProfile::preset("churn");
  for (std::size_t i = 0; i + 1 < front.positional.size(); ++i) {
    if (front.positional[i] == "--out-dir") {
      out_dir = front.positional[++i];
    } else if (front.positional[i] == "--profile") {
      std::string error;
      const auto parsed = HazardProfile::parse(front.positional[++i], &error);
      if (!parsed) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      profile = *parsed;
    }
  }
  if (profile.find(HazardKind::kPeeringChurn) == nullptr) {
    std::fprintf(stderr, "profile '%s' has no churn hazard\n",
                 profile.spec_string().c_str());
    return 2;
  }

  ScorecardConfig config;
  config.threads = front.pipeline.campaign.threads;
  config.deterministic_metrics = front.pipeline.deterministic_metrics;

  std::printf("churn profile %s (world seed %llu, hazard seed %llu)\n",
              profile.spec_string().c_str(),
              static_cast<unsigned long long>(config.world_seed),
              static_cast<unsigned long long>(config.hazard_seed));
  const ChurnRun run = run_churn_sequence(profile, config);
  std::printf("planted %zu turnover events over %zu worlds\n",
              run.events.size(), run.snapshots.size());

  std::error_code mkdir_error;
  std::filesystem::create_directories(out_dir, mkdir_error);
  if (mkdir_error) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 mkdir_error.message().c_str());
    return 1;
  }

  std::vector<std::string> paths;
  for (std::size_t t = 0; t < run.snapshots.size(); ++t) {
    const std::string path =
        out_dir + "/world_t" + std::to_string(t) + ".snap";
    std::string error;
    if (!save_snapshot_file(path, run.snapshots[t], &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("  t%zu: %s (%zu segments)\n", t, path.c_str(),
                run.snapshots[t].segments.size());
    paths.push_back(path);
  }

  // Replay the diffs from the persisted files — the reconstruction must
  // work from snapshots alone, exactly as `cloudmap_cli diff` would see
  // them, not from in-memory state.
  std::vector<RunSnapshot> loaded;
  for (const std::string& path : paths) {
    std::string error;
    auto snapshot = load_snapshot_file(path, &error);
    if (!snapshot) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    loaded.push_back(std::move(*snapshot));
  }
  for (std::size_t t = 1; t < loaded.size(); ++t) {
    const SnapshotDiff diff = diff_snapshots(loaded[t - 1], loaded[t]);
    std::printf("diff t%zu -> t%zu: +%zu -%zu segments\n", t - 1, t,
                diff.added.size(), diff.removed.size());
  }

  const ChurnScore score = score_turnover_reconstruction(loaded, run.events);
  std::printf("turnover: %zu events, %zu observable, %zu reconstructed\n",
              score.events, score.observable, score.reconstructed);
  if (score.observable == 0) {
    std::fprintf(stderr, "no observable turnover events — nothing tested\n");
    return 1;
  }
  if (score.reconstructed != score.observable) {
    std::fprintf(stderr, "reconstruction FAILED: %zu of %zu observable "
                 "events missing from the diffs\n",
                 score.observable - score.reconstructed, score.observable);
    return 1;
  }
  std::printf("reconstruction ok\n");
  return 0;
}
