// Side-by-side tool comparison (§8): run the cloudmap pipeline and the
// reimplemented bdrmap baseline on the same world, then diff their views —
// including the per-region inconsistencies only bdrmap exhibits.
#include <cstdio>

#include "bdrmap/bdrmap.h"
#include "core/options.h"
#include "core/pipeline.h"

using namespace cloudmap;

int main(int argc, char** argv) {
  const FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 123;
  const World world = generate_world(config);

  Pipeline pipeline(world, front.pipeline);
  pipeline.run_until(StageId::kAliasVerification);

  Bdrmap bdrmap(world, pipeline.forwarder(), pipeline.snapshot_round2(),
                pipeline.as2org(), CloudProvider::kAmazon);
  const BdrmapResult result = bdrmap.run();

  std::printf("%-28s %10s %10s\n", "", "cloudmap", "bdrmap");
  std::printf("%-28s %10zu %10zu\n", "ABIs",
              pipeline.campaign().fabric().unique_abis().size(),
              result.abis.size());
  std::printf("%-28s %10zu %10zu\n", "CBIs",
              pipeline.campaign().fabric().unique_cbis().size(),
              result.cbis.size());
  std::printf("%-28s %10zu %10zu\n", "peer ASes",
              pipeline.peer_asns().size(), result.owner_asns.size());

  std::printf("\nbdrmap-only pathologies (§8):\n");
  std::printf("  AS0-owned CBIs:                  %zu\n",
              result.as0_owner_cbis);
  std::printf("  multi-owner CBIs across regions: %zu\n",
              result.multi_owner_cbis);
  std::printf("  ABI/CBI flips across regions:    %zu\n",
              result.abi_cbi_flips);
  std::printf("  third-party heuristic owners:    %zu\n",
              result.thirdparty_cbis);

  const BdrmapComparison comparison = compare_with_fabric(
      result, pipeline.campaign().fabric(), pipeline.peer_asns());
  std::printf("\nagreement: %zu common ABIs, %zu common CBIs, %zu common "
              "ASes; %zu bdrmap-only ASes, %zu cloudmap-only ASes\n",
              comparison.common_abis, comparison.common_cbis,
              comparison.common_ases, comparison.bdrmap_only_ases,
              comparison.cloudmap_only_ases);

  // Why the gap: annotate bdrmap's blind spots from ground truth.
  std::size_t ixp_cbis = 0;
  std::size_t whois_cbis = 0;
  for (const std::uint32_t cbi : pipeline.campaign().fabric().unique_cbis()) {
    Annotator annotator = pipeline.annotator();
    annotator.set_snapshot(&pipeline.snapshot_round2());
    const HopAnnotation a = annotator.annotate(Ipv4(cbi));
    if (a.ixp) ++ixp_cbis;
    else if (a.source == AnnotationSource::kWhois) ++whois_cbis;
  }
  std::printf("\ncloudmap CBIs in bdrmap's blind spots: %zu on IXP LANs, "
              "%zu in WHOIS-only space (bdrmap annotates from BGP alone)\n",
              ixp_cbis, whois_cbis);
  return 0;
}
