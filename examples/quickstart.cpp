// Quickstart: generate a small synthetic Internet, map the cloud's peering
// fabric end to end, and print the headline numbers — the 60-second tour of
// the library.
#include <cstdio>
#include <fstream>

#include "core/options.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace cloudmap;
  const FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }

  // 1. A small world with every structural feature of the full model.
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 42;
  const World world = generate_world(config);
  std::printf("world: %zu metros, %zu ASes, %zu routers, %zu interfaces, "
              "%zu interconnects\n",
              world.metros.size(), world.ases.size(), world.routers.size(),
              world.interfaces.size(), world.interconnects.size());

  // 2. Run the full measurement + inference pipeline against it.
  Pipeline pipeline(world, front.pipeline);
  pipeline.run_all();

  const RoundStats& round1 = pipeline.round1();
  const RoundStats& round2 = pipeline.round2();
  std::printf("round 1: %llu traceroutes, %.1f%% left the cloud\n",
              static_cast<unsigned long long>(round1.traceroutes),
              100.0 * round1.left_cloud_fraction());
  std::printf("round 2: %llu expansion traceroutes\n",
              static_cast<unsigned long long>(round2.traceroutes));

  const Fabric& fabric = pipeline.campaign().fabric();
  std::printf("fabric: %zu segments, %zu ABIs, %zu CBIs, %zu peer ASes\n",
              fabric.segments().size(), fabric.unique_abis().size(),
              fabric.unique_cbis().size(), pipeline.peer_asns().size());

  const HeuristicCounts& h = pipeline.heuristics();
  std::printf("verification: %zu/%zu ABIs confirmed (ixp %zu, hybrid %zu, "
              "reachability %zu), %zu shifts\n",
              h.cum_ixp_abis + h.cum_hybrid_abis + h.cum_reachable_abis,
              h.total_abis, h.cum_ixp_abis, h.cum_hybrid_abis,
              h.cum_reachable_abis, h.shifts_applied);

  const VpiDetectionResult& vpis = pipeline.vpis();
  std::printf("VPIs: %zu CBIs shared with other clouds (lower bound)\n",
              vpis.vpi_cbis.size());

  const PinningResult& pins = pipeline.pinning();
  std::printf("pinning: %zu interfaces at metro level, %zu more at region "
              "level\n",
              pins.pins.size(), pins.regional.size());

  // 3. Because the substrate is synthetic, inference can be scored.
  const InferenceScore score = pipeline.score();
  std::printf("ground truth: recall %.1f%% (router-level %.1f%%), precision "
              "%.1f%% (router-level %.1f%%), %zu/%zu discoverable "
              "interconnects found\n",
              100.0 * score.recall(), 100.0 * score.router_recall(),
              100.0 * score.precision(), 100.0 * score.router_precision(),
              score.discovered, score.discoverable_interconnects);

  // 4. Every stage left a report behind; --metrics-json saves the full
  // artifact for diffing across runs or thread counts.
  std::printf("\nstage           wall_ms   probes\n");
  for (const StageReport& report : pipeline.reports()) {
    std::printf("%-18s %6.1f %8llu\n", to_string(report.id), report.wall_ms,
                static_cast<unsigned long long>(report.probes));
  }
  if (!front.metrics_json.empty()) {
    std::ofstream out(front.metrics_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_json.c_str());
      return 1;
    }
    pipeline.write_metrics_json(out);
    std::printf("metrics: wrote %s\n", front.metrics_json.c_str());
  }
  return 0;
}
