// cloudmap_cli — an operator-style command-line front end that separates
// collection from analysis, the way a real multi-day campaign works:
//
//   cloudmap_cli worldgen [seed]          summarize the synthetic world
//   cloudmap_cli campaign [seed] [file]   run both rounds, save the fabric
//   cloudmap_cli analyze  [seed] [file]   load a saved fabric and report
//   cloudmap_cli all      [seed]          everything in one process
//   cloudmap_cli snapshot [seed] [file]   full pipeline → binary snapshot
//   cloudmap_cli query FILE ACTION [ARG]  serve queries from a snapshot
//                                         (counts | peers [asn] | metro N |
//                                          vpis | lookup IP | confidence |
//                                          resave OUT)
//   cloudmap_cli remote HOST:PORT ACTION [ARG]
//                                         same query actions against a
//                                         running cloudmap_serve daemon,
//                                         plus swap PATH | stats | ping |
//                                         stop
//   cloudmap_cli campaign SEED PREFIX --shard I/N [--shard-round R]
//                                         run only shard I of an N-way
//                                         campaign round, streaming its
//                                         share of the sweep to
//                                         PREFIX.r<R>.s<I>of<N>.part (round
//                                         2 needs all round-1 parts)
//   cloudmap_cli merge-shards SEED PREFIX N OUT.snap
//                                         absorb every shard's parts, run
//                                         the remaining stages, write the
//                                         snapshot — byte-identical to a
//                                         single-process `snapshot` run
//                                         under --deterministic-metrics
//   cloudmap_cli diff A B                 longitudinal snapshot comparison
//   cloudmap_cli hazards list             presets + hazard kinds
//   cloudmap_cli hazards describe P       canonical spec of a profile
//   cloudmap_cli hazards score [P ...]    degradation scorecard per profile
//                                         [--json PATH] [--out-dir DIR]
//
// Local and remote queries build the same QueryRequest and print through
// the same code; the only difference is whether execute() runs in-process
// or across the serve wire protocol.
//
// Shared flags (parsed by cloudmap::options_from_env_and_args, so the CLI,
// the examples, and the benches agree on validation and precedence):
//   --threads N          campaign worker count (0 = one per hardware thread,
//                        the default; results are identical for every value)
//   --metrics-json PATH  write the per-stage metrics artifact after the run
//                        (campaign/all run the FULL pipeline — VPI detection
//                        and pinning included — so the artifact covers every
//                        stage; the saved fabric is unaffected). For `query`
//                        the stage section comes from the snapshot and the
//                        counters section carries the query.* counters.
//   --metrics-csv PATH   same accounting as flat stage,metric,value rows
//   --no-metrics         disable metrics collection entirely
//   --snapshot PATH      also write the binary run snapshot (campaign/all)
//   --retry-budget N     re-probe failed targets up to N times (default 0)
//   --retry-backoff T    base backoff in simulated probe ticks (default 64)
//   --response-scale X   scale router response probabilities by X in [0,1]
//                        (loss injection for campaign experiments)
//   --host-response X    override the target-host response probability
//   --deterministic-metrics  zero wall-clock metrics fields so artifacts and
//                        snapshots are byte-identical across runs
//   --min-confidence X   filter query listings to segments scoring >= X
//   --hazard-profile P   apply an adversarial hazard profile (preset name or
//                        spec like "loss:0.2,mpls:0.3") to the world and the
//                        campaign; churn profiles only take effect under
//                        `hazards score` (they emit world sequences)
//   --shard I/N          campaign only: run shard I of an N-way campaign
//                        (0 <= I < N; N = 1 still writes a part file)
//   --shard-round R      which round a --shard invocation executes (1 or 2)
//   CLOUDMAP_THREADS / CLOUDMAP_METRICS_JSON / CLOUDMAP_SNAPSHOT /
//   CLOUDMAP_RETRY_BUDGET / CLOUDMAP_DETERMINISTIC_METRICS env equivalents
//
// With no arguments it runs `all 7`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/graph.h"
#include "analysis/grouping.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "io/serialize.h"
#include "io/shard.h"
#include "io/snapshot.h"
#include "obs/emit.h"
#include "query/diff.h"
#include "query/engine.h"
#include "query/fabric_index.h"
#include "query/request.h"
#include "scenario/score.h"
#include "scenario/world_hazards.h"
#include "serve/client.h"

using namespace cloudmap;

namespace {

// The hazard master seed is the world seed: `--hazard-profile P SEED` is a
// complete replay key (profile + seed => byte-identical snapshot).
World make_world(std::uint64_t seed, const HazardProfile& hazards) {
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = seed;
  World world = generate_world(config);
  if (!hazards.empty()) apply_world_hazards(world, hazards, seed);
  return world;
}

int cmd_worldgen(std::uint64_t seed, const FrontendOptions& front) {
  const World world = make_world(seed, front.hazard_profile);
  std::printf("world (seed %llu)\n", static_cast<unsigned long long>(seed));
  std::printf("  metros        %zu\n", world.metros.size());
  std::printf("  colos         %zu\n", world.colos.size());
  std::printf("  IXPs          %zu\n", world.ixps.size());
  std::printf("  regions       %zu\n", world.regions.size());
  std::printf("  ASes          %zu\n", world.ases.size());
  std::printf("  routers       %zu\n", world.routers.size());
  std::printf("  interfaces    %zu\n", world.interfaces.size());
  std::printf("  links         %zu\n", world.links.size());
  std::printf("  interconnects %zu\n", world.interconnects.size());
  std::size_t by_kind[3] = {0, 0, 0};
  std::size_t private_vpis = 0;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    ++by_kind[static_cast<int>(ic.kind)];
    if (ic.private_address) ++private_vpis;
  }
  std::printf("    public IXP %zu, cross-connect %zu, VPI %zu "
              "(%zu private-address)\n",
              by_kind[0], by_kind[1], by_kind[2], private_vpis);
  const std::string issue = world.validate();
  std::printf("  validate: %s\n", issue.empty() ? "ok" : issue.c_str());
  return issue.empty() ? 0 : 1;
}

// Write the metrics artifacts the front end asked for; 0 on success.
int emit_metrics(const Pipeline& pipeline, const FrontendOptions& front) {
  if (!front.metrics_json.empty()) {
    std::ofstream out(front.metrics_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_json.c_str());
      return 1;
    }
    pipeline.write_metrics_json(out);
    std::printf("metrics: wrote %s (%zu stages)\n",
                front.metrics_json.c_str(), pipeline.reports().size());
  }
  if (!front.metrics_csv.empty()) {
    std::ofstream out(front.metrics_csv);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_csv.c_str());
      return 1;
    }
    pipeline.write_metrics_csv(out);
    std::printf("metrics: wrote %s\n", front.metrics_csv.c_str());
  }
  return 0;
}

// Canonical configuration key of a campaign run: every knob that changes
// campaign RESULTS (never execution-environment knobs like --threads or
// --shard). All shard and merge invocations of one campaign must hash to
// the same digest, or the merge refuses the parts.
std::string shard_campaign_key(std::uint64_t seed,
                               const FrontendOptions& front) {
  const CampaignConfig& campaign = front.pipeline.campaign;
  std::string key = "world:" + std::to_string(seed);
  key += "|seed:" + std::to_string(front.pipeline.seed);
  key += "|subject:" +
         std::to_string(static_cast<int>(front.pipeline.subject));
  key += "|stride:" + std::to_string(campaign.expansion_stride);
  key += "|retry:" + std::to_string(campaign.reprobe.budget) + ":" +
         std::to_string(campaign.reprobe.backoff_base_ticks);
  key += "|response:" + std::to_string(campaign.traceroute.response_scale) +
         ":" + std::to_string(campaign.traceroute.host_response);
  key += "|hazards:" + front.hazard_profile.spec_string();
  return key;
}

// One shard of the distributed campaign: run only this process's share of
// one round's canonical work items and stream the results to
// PREFIX.r<round>.s<i>of<n>.part. Round 2 first absorbs the merged round-1
// parts (identically in every shard), because its expansion targets derive
// from the round-1 fabric.
int cmd_campaign_shard(std::uint64_t seed, const std::string& prefix,
                       const FrontendOptions& front) {
  const World world = make_world(seed, front.hazard_profile);
  Pipeline pipeline(world, front.pipeline);
  Campaign& campaign = pipeline.mutable_campaign();
  const int index = front.pipeline.campaign.shard_index;
  const int count = front.pipeline.campaign.shard_count;
  const int round = front.shard_round;
  const std::uint64_t digest = shard_digest(shard_campaign_key(seed, front));
  std::string error;

  ShardMerge round1_parts;
  if (round == 2) {
    std::vector<std::string> paths;
    for (int s = 0; s < count; ++s)
      paths.push_back(shard_part_path(prefix, 1, s, count));
    if (!round1_parts.open(paths, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (round1_parts.header().config_digest != digest) {
      std::fprintf(stderr,
                   "round-1 parts were produced under a different "
                   "configuration (digest mismatch); re-run round 1\n");
      return 1;
    }
  }

  try {
    if (round == 2)
      campaign.absorb_round1([&round1_parts](Campaign::SweepChunkResult& r) {
        return round1_parts.next(r);
      });

    Annotator annotator = pipeline.annotator();
    annotator.set_snapshot(round == 1 ? &pipeline.snapshot_round1()
                                      : &pipeline.snapshot_round2());
    const std::vector<Ipv4> targets =
        round == 1 ? campaign.round1_targets() : campaign.expansion_targets();

    ShardPartHeader header;
    header.config_digest = digest;
    header.round = static_cast<std::uint32_t>(round);
    header.shard_index = static_cast<std::uint32_t>(index);
    header.shard_count = static_cast<std::uint32_t>(count);
    header.total_items = campaign.sweep_item_count(targets.size());
    header.target_count = targets.size();
    const std::string path = shard_part_path(prefix, round, index, count);
    ShardPartWriter writer;
    if (!writer.open(path, header, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    bool write_ok = true;
    const Campaign::ShardSink sink =
        [&](std::uint64_t item, const Campaign::SweepChunkResult& result) {
          if (write_ok && !writer.append(item, result, &error))
            write_ok = false;
        };
    if (round == 1)
      campaign.run_round1_shard(annotator, sink);
    else
      campaign.run_round2_shard(annotator, sink);
    if (!write_ok || !writer.finish(&error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("shard %d/%d round %d: wrote %s (%llu of %llu work items)\n",
                index, count, round, path.c_str(),
                static_cast<unsigned long long>(
                    header.total_items / count +
                    (static_cast<std::uint64_t>(index) <
                             header.total_items % count
                         ? 1
                         : 0)),
                static_cast<unsigned long long>(header.total_items));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

// merge-shards SEED PREFIX N OUT.snap: absorb every shard's round-1 and
// round-2 parts in canonical order, run the remaining pipeline stages
// in-process, and write the final snapshot — byte-identical to a
// single-process `snapshot` run under --deterministic-metrics.
int cmd_merge_shards(const std::vector<std::string>& args,
                     FrontendOptions front) {
  if (args.size() < 5) {
    std::fprintf(stderr, "usage: merge-shards SEED PREFIX N OUT.snap\n");
    return 2;
  }
  const std::uint64_t seed = std::strtoull(args[1].c_str(), nullptr, 10);
  const std::string& prefix = args[2];
  const int count = static_cast<int>(std::strtol(args[3].c_str(), nullptr, 10));
  const std::string& out_path = args[4];
  if (count < 1) {
    std::fprintf(stderr, "merge-shards: shard count must be >= 1, got '%s'\n",
                 args[3].c_str());
    return 2;
  }
  // The merge process runs heuristics/VPI/pinning itself; the shard split
  // only ever applied to the probe sweeps.
  front.pipeline.campaign.shard_index = 0;
  front.pipeline.campaign.shard_count = 1;
  const std::uint64_t digest = shard_digest(shard_campaign_key(seed, front));

  std::string error;
  ShardMerge round1_parts;
  ShardMerge round2_parts;
  for (int round = 1; round <= 2; ++round) {
    ShardMerge& merge = round == 1 ? round1_parts : round2_parts;
    std::vector<std::string> paths;
    for (int s = 0; s < count; ++s)
      paths.push_back(shard_part_path(prefix, round, s, count));
    if (!merge.open(paths, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (merge.header().config_digest != digest) {
      std::fprintf(stderr,
                   "round-%d parts were produced under a different "
                   "configuration (digest mismatch)\n",
                   round);
      return 1;
    }
  }

  const World world = make_world(seed, front.hazard_profile);
  Pipeline pipeline(world, front.pipeline);
  pipeline.set_absorb_sources(
      [&round1_parts](Campaign::SweepChunkResult& r) {
        return round1_parts.next(r);
      },
      [&round2_parts](Campaign::SweepChunkResult& r) {
        return round2_parts.next(r);
      });
  try {
    const RunSnapshot& snap = pipeline.run_snapshot();
    if (!save_snapshot_file(out_path, snap, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("merged %d shards: wrote %s (%zu segments, %zu pins)\n",
                count, out_path.c_str(), snap.segments.size(),
                snap.pins.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return emit_metrics(pipeline, front);
}

int cmd_campaign(std::uint64_t seed, const std::string& path,
                 const FrontendOptions& front) {
  if (front.shard_requested)
    return cmd_campaign_shard(seed, path, front);
  const World world = make_world(seed, front.hazard_profile);
  Pipeline pipeline(world, front.pipeline);
  if (front.metrics_json.empty() && front.metrics_csv.empty()) {
    pipeline.run_until(StageId::kAliasVerification);  // rounds + §5
  } else {
    // A metrics artifact was requested: run every stage so the report
    // covers the whole pipeline. VPI detection and pinning never modify
    // the fabric, so the file written below is byte-identical either way.
    pipeline.run_all();
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  write_fabric(out, pipeline.campaign().fabric());
  std::printf("campaign done: %zu segments saved to %s\n",
              pipeline.campaign().fabric().segments().size(), path.c_str());
  std::printf("  round1 left-cloud %.1f%%, %llu traceroutes\n",
              100.0 * pipeline.round1().left_cloud_fraction(),
              static_cast<unsigned long long>(pipeline.round1().traceroutes));
  if (!front.snapshot_out.empty()) {
    // The snapshot needs every stage; run_snapshot() runs the rest.
    const RunSnapshot& snap = pipeline.run_snapshot();
    std::string error;
    if (!save_snapshot_file(front.snapshot_out, snap, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("snapshot: wrote %s (%zu segments)\n",
                front.snapshot_out.c_str(), snap.segments.size());
  }
  return emit_metrics(pipeline, front);
}

int cmd_analyze(std::uint64_t seed, const std::string& path,
                const FrontendOptions& front) {
  const World world = make_world(seed, front.hazard_profile);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s (run `campaign` first)\n",
                 path.c_str());
    return 1;
  }
  const Fabric fabric = read_fabric(in);
  std::printf("loaded fabric: %zu segments, %zu ABIs, %zu CBIs\n",
              fabric.segments().size(), fabric.unique_abis().size(),
              fabric.unique_cbis().size());

  // Datasets rebuild deterministically from the same seed, so offline
  // analysis matches the collection run.
  Pipeline pipeline(world, front.pipeline);
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  PeeringClassifier classifier(&annotator, &pipeline.snapshot_round2(),
                               pipeline.subject_asns(), nullptr);
  const GroupBreakdown groups = breakdown(fabric, classifier);
  std::printf("peer ASes: %zu (public %zu, private non-BGP %zu, "
              "private BGP %zu)\n",
              groups.total_ases, groups.pb.ases.size(),
              groups.pr_nb.ases.size(), groups.pr_b.ases.size());
  const IcgStats icg = icg_stats(fabric);
  std::printf("ICG: %zu nodes, %zu edges, largest component %.1f%%\n",
              icg.abi_nodes + icg.cbi_nodes, icg.edges,
              100.0 * icg.largest_component_fraction);
  return 0;
}

// Full pipeline → binary snapshot (io/snapshot.h). The snapshot is the
// queryable artifact: everything `analyze` recomputes from the seed is
// stored, so `query` below never needs the world.
int cmd_snapshot(std::uint64_t seed, const std::string& path,
                 const FrontendOptions& front) {
  const World world = make_world(seed, front.hazard_profile);
  Pipeline pipeline(world, front.pipeline);
  const RunSnapshot& snap = pipeline.run_snapshot();
  std::string error;
  if (!save_snapshot_file(path, snap, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("snapshot: wrote %s (%zu segments, %zu pins, %zu alias sets, "
              "%zu stage reports)\n",
              path.c_str(), snap.segments.size(), snap.pins.size(),
              snap.alias_sets.size(), snap.stage_reports.size());
  return emit_metrics(pipeline, front);
}

void print_counts(const FabricCounts& c) {
  std::printf("segments        %zu (ABIs %zu, CBIs %zu)\n", c.segments,
              c.unique_abis, c.unique_cbis);
  std::printf("peer ASes       %zu (orgs %zu)\n", c.peer_ases, c.peer_orgs);
  for (std::size_t i = 0; i < c.by_confirmation.size(); ++i)
    std::printf("  %-18s %zu\n",
                to_string(static_cast<Confirmation>(i)),
                c.by_confirmation[i]);
  std::printf("IXP segments    %zu\n", c.ixp_segments);
  std::printf("VPI CBIs        %zu\n", c.vpi_cbis);
  for (std::size_t g = 0; g < kPeeringGroupCount; ++g)
    std::printf("  group %-12s %zu segments, %zu ASes\n",
                to_string(static_cast<PeeringGroup>(g)), c.group_segments[g],
                c.group_ases[g]);
  std::printf("unattributed    %zu\n", c.unattributed_segments);
  std::printf("pinned          %zu interfaces (+%zu regional-only)\n",
              c.pinned_interfaces, c.regional_only);
  std::printf("confidence      mean %.3f, %zu segments >= 0.5\n",
              c.mean_confidence, c.confident_segments);
}

void print_brief_line(const SegmentBrief& b) {
  std::printf("  [%u] %s > %s  peer AS%u  %s%s%s  conf %.3f\n", b.index,
              Ipv4(b.abi).to_string().c_str(), Ipv4(b.cbi).to_string().c_str(),
              b.peer_asn, to_string(static_cast<Confirmation>(b.confirmation)),
              b.ixp ? " ixp" : "", b.vpi ? " vpi" : "", b.confidence);
}

// How a query actually runs: in-process (engine.execute) or across the
// serve wire protocol (serve::Client::query). Returns false with a
// diagnostic when transport or execution fails.
using QueryExec = std::function<bool(const QueryRequest&, QueryResponse&,
                                     std::string*)>;

// Execute one request and surface transport or request errors uniformly.
bool run_query(const QueryExec& exec, const QueryRequest& request,
               QueryResponse& response) {
  std::string error;
  if (!exec(request, response, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  if (response.status != QueryStatus::kOk) {
    std::fprintf(stderr, "query failed: %s\n", response.error.c_str());
    return false;
  }
  return true;
}

// The shared ACTION [ARG] front end for `query` (local) and `remote`
// (daemon): builds one QueryRequest per action, runs it through `exec`,
// and prints from the QueryResponse alone — so local and remote output are
// identical bytes. `at` is the index of ACTION in args.
int run_action(const QueryExec& exec, const std::vector<std::string>& args,
               std::size_t at, double min_confidence) {
  const std::string& action = args[at];
  QueryRequest request;
  request.min_confidence = min_confidence;
  request.want_briefs = true;
  QueryResponse response;

  if (action == "counts") {
    request.kind = QueryKind::kCounts;
    if (!run_query(exec, request, response)) return 1;
    print_counts(*response.counts);
  } else if (action == "peers") {
    if (args.size() > at + 1) {
      request.kind = QueryKind::kPeersOf;
      request.asn = static_cast<std::uint32_t>(
          std::strtoul(args[at + 1].c_str(), nullptr, 10));
      if (!run_query(exec, request, response)) return 1;
      std::printf("AS%u: %zu segments\n", request.asn,
                  response.items.size());
      for (const SegmentBrief& b : response.briefs) print_brief_line(b);
    } else {
      request.kind = QueryKind::kPeerList;
      if (!run_query(exec, request, response)) return 1;
      std::printf("%zu peer ASes\n", response.items.size());
      for (const std::uint32_t asn : response.items) {
        QueryRequest per_asn;
        per_asn.kind = QueryKind::kPeersOf;
        per_asn.asn = asn;
        QueryResponse segs;
        if (!run_query(exec, per_asn, segs)) return 1;
        std::printf("  AS%-10u %zu segments\n", asn, segs.items.size());
      }
    }
  } else if (action == "metro") {
    if (args.size() < at + 2) {
      std::fprintf(stderr, "query metro requires a metro index\n");
      return 2;
    }
    request.kind = QueryKind::kInterfacesIn;
    request.metro = static_cast<std::uint32_t>(
        std::strtoul(args[at + 1].c_str(), nullptr, 10));
    if (!run_query(exec, request, response)) return 1;
    std::printf("metro %u: %zu pinned interfaces\n", request.metro,
                response.items.size());
    for (const std::uint32_t a : response.items)
      std::printf("  %s\n", Ipv4(a).to_string().c_str());
  } else if (action == "vpis") {
    request.kind = QueryKind::kVpiCandidates;
    if (!run_query(exec, request, response)) return 1;
    std::printf("%zu VPI segments\n", response.items.size());
    for (const SegmentBrief& b : response.briefs) print_brief_line(b);
  } else if (action == "confidence") {
    request.kind = QueryKind::kConfidenceHistogram;
    if (!run_query(exec, request, response)) return 1;
    const ConfidenceHistogram& hist = *response.histogram;
    std::printf("confidence over %zu segments: mean %.3f, min %.3f, "
                "max %.3f\n",
                hist.segments, hist.mean, hist.min, hist.max);
    for (std::size_t b = 0; b < hist.bins.size(); ++b)
      std::printf("  [%.1f, %.1f%c %zu\n", 0.1 * static_cast<double>(b),
                  0.1 * static_cast<double>(b + 1),
                  b + 1 == hist.bins.size() ? ']' : ')', hist.bins[b]);
    if (min_confidence >= 0.0) {
      QueryRequest threshold;
      threshold.kind = QueryKind::kMinConfidence;
      threshold.min_confidence = min_confidence;
      threshold.want_briefs = true;
      QueryResponse matches;
      if (!run_query(exec, threshold, matches)) return 1;
      std::printf("%zu segments with confidence >= %.3f\n",
                  matches.items.size(), min_confidence);
      for (const SegmentBrief& b : matches.briefs) print_brief_line(b);
    }
  } else if (action == "lookup") {
    if (args.size() < at + 2) {
      std::fprintf(stderr, "query lookup requires an IPv4 address\n");
      return 2;
    }
    const std::optional<Ipv4> address = Ipv4::parse(args[at + 1]);
    if (!address) {
      std::fprintf(stderr, "bad IPv4 address '%s'\n", args[at + 1].c_str());
      return 2;
    }
    request.kind = QueryKind::kLookup;
    request.address = address->value();
    if (!run_query(exec, request, response)) return 1;
    if (!response.found) {
      std::printf("%s: no covering fabric entry\n",
                  address->to_string().c_str());
    } else {
      const Prefix prefix(Ipv4(response.prefix_network),
                          response.prefix_length);
      std::printf("%s: %s %s%s%s, %zu segments\n",
                  address->to_string().c_str(), prefix.to_string().c_str(),
                  response.is_interface ? "interface" : "destination cone",
                  response.role_abi ? " abi" : "",
                  response.role_cbi ? " cbi" : "", response.items.size());
      for (const SegmentBrief& b : response.briefs) print_brief_line(b);
    }
  } else {
    std::fprintf(stderr, "unknown query action '%s'\n", action.c_str());
    return 2;
  }
  return 0;
}

// Serve typed queries from a saved snapshot; no world or pipeline needed.
int cmd_query(const std::vector<std::string>& args,
              const FrontendOptions& front) {
  if (args.size() < 3) {
    std::fprintf(stderr,
                 "usage: query FILE counts | peers [asn] | metro N | vpis | "
                 "lookup IP | confidence | resave OUT  [--min-confidence X]\n");
    return 2;
  }
  std::string error;
  std::optional<RunSnapshot> snap = load_snapshot_file(args[1], &error);
  if (!snap) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const FabricIndex index(std::move(*snap));
  MetricsRegistry registry(front.pipeline.metrics);
  const QueryEngine engine(index, &registry);
  const std::string& action = args[2];

  if (action == "resave") {
    if (args.size() < 4) {
      std::fprintf(stderr, "query resave requires an output path\n");
      return 2;
    }
    if (!save_snapshot_file(args[3], index.snapshot(), &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("resaved %s -> %s\n", args[1].c_str(), args[3].c_str());
  } else {
    const QueryExec local = [&engine](const QueryRequest& request,
                                      QueryResponse& response,
                                      std::string*) {
      response = engine.execute(request);
      return true;
    };
    if (const int rc = run_action(local, args, 2, front.min_confidence))
      return rc;
  }

  if (!front.metrics_json.empty()) {
    std::ofstream out(front.metrics_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_json.c_str());
      return 1;
    }
    // The stage section replays the producing run's reports (stored in the
    // snapshot); the counters section carries this process's query.* totals.
    MetricsMeta meta;
    meta.seed = index.snapshot().seed;
    meta.threads = index.snapshot().threads;
    meta.subject =
        index.snapshot().subject < kCloudProviderCount
            ? to_string(static_cast<CloudProvider>(index.snapshot().subject))
            : "unknown";
    write_metrics_json(out, meta, index.snapshot().stage_reports, registry);
    std::printf("metrics: wrote %s\n", front.metrics_json.c_str());
  }
  return 0;
}

// The same query actions against a running cloudmap_serve daemon, plus the
// daemon-control verbs. One connection per invocation.
int cmd_remote(const std::vector<std::string>& args,
               const FrontendOptions& front) {
  if (args.size() < 3) {
    std::fprintf(stderr,
                 "usage: remote HOST:PORT counts | peers [asn] | metro N | "
                 "vpis | lookup IP | confidence | swap PATH | stats | ping | "
                 "stop  [--min-confidence X]\n");
    return 2;
  }
  const std::string& endpoint = args[1];
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "remote expects HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const unsigned long port = std::strtoul(endpoint.c_str() + colon + 1,
                                          nullptr, 10);
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "bad port in '%s'\n", endpoint.c_str());
    return 2;
  }
  std::string error;
  std::optional<serve::Client> client = serve::Client::connect(
      host, static_cast<std::uint16_t>(port), &error);
  if (!client) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const std::string& action = args[2];
  if (action == "swap") {
    if (args.size() < 4) {
      std::fprintf(stderr, "remote swap requires a snapshot path\n");
      return 2;
    }
    if (!client->swap(args[3], &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("swapped to %s\n", args[3].c_str());
    return 0;
  }
  if (action == "stats") {
    serve::ServerStats stats;
    if (!client->stats(stats, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("served %llu, failed %llu, swaps %llu, clients %llu\n",
                static_cast<unsigned long long>(stats.served),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.swaps),
                static_cast<unsigned long long>(stats.clients));
    return 0;
  }
  if (action == "ping") {
    if (!client->ping(&error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (action == "stop") {
    if (!client->stop_server(&error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("server stopping\n");
    return 0;
  }

  const QueryExec remote = [&client](const QueryRequest& request,
                                     QueryResponse& response,
                                     std::string* exec_error) {
    return client->query(request, response, exec_error);
  };
  return run_action(remote, args, 2, front.min_confidence);
}

// Longitudinal comparison of two snapshots (query/diff.h).
int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::fprintf(stderr, "usage: diff A.snap B.snap\n");
    return 2;
  }
  std::string error;
  std::optional<RunSnapshot> a = load_snapshot_file(args[1], &error);
  if (!a) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::optional<RunSnapshot> b = load_snapshot_file(args[2], &error);
  if (!b) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const SnapshotDiff diff = diff_snapshots(*a, *b);
  write_diff(std::cout, diff);
  return 0;
}

void print_score_row(const HazardScore& row) {
  std::printf("%-14s segments %4zu  precision %.3f  recall %.3f  "
              "pin %.3f  conf %.3f  calib %+.3f\n",
              row.profile.c_str(), row.segments, row.precision, row.recall,
              row.pinning_accuracy, row.mean_confidence, row.calibration_gap);
  if (row.has_remote_rule)
    std::printf("    remote-rule: planted %zu, measured %zu, recovered %zu, "
                "false-remote %zu (>= %.1f ms)\n",
                row.remote_rule.planted, row.remote_rule.measured,
                row.remote_rule.recovered, row.remote_rule.false_remote,
                row.remote_rule.threshold_ms);
  if (row.has_churn)
    std::printf("    churn: %zu events, %zu observable, %zu reconstructed\n",
                row.churn.events, row.churn.observable,
                row.churn.reconstructed);
}

// hazards list | describe NAME|SPEC | score [PROFILE ...] [--json PATH]
// [--out-dir DIR]. The scorecard runs the full pipeline once per profile
// (plus a longitudinal world per churn step) on the fixed scorecard world.
int cmd_hazards(const std::vector<std::string>& args,
                const FrontendOptions& front) {
  const std::string action = args.size() > 1 ? args[1] : "list";

  if (action == "list") {
    std::printf("hazard kinds:\n");
    for (int k = 0; k < kHazardKindCount; ++k) {
      const auto kind = static_cast<HazardKind>(k);
      std::printf("  %-12s %s\n", hazard_kind_name(kind),
                  hazard_kind_description(kind));
    }
    std::printf("presets:\n");
    for (const std::string& name : HazardProfile::preset_names()) {
      const auto preset = HazardProfile::preset(name);
      const std::string spec = preset->spec_string();
      std::printf("  %-16s %s\n", name.c_str(),
                  spec.empty() ? "(no hazards)" : spec.c_str());
    }
    return 0;
  }

  if (action == "describe") {
    if (args.size() < 3) {
      std::fprintf(stderr, "usage: hazards describe NAME|SPEC\n");
      return 2;
    }
    std::string error;
    const auto profile = HazardProfile::parse(args[2], &error);
    if (!profile) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const std::string spec = profile->spec_string();
    std::printf("profile %s: %s\n", profile->name.c_str(),
                spec.empty() ? "(no hazards)" : spec.c_str());
    for (const HazardSpec& hazard : profile->hazards) {
      std::printf("  %-12s intensity %.3g%s  %s\n",
                  hazard_kind_name(hazard.kind), hazard.intensity,
                  hazard.kind == HazardKind::kPeeringChurn
                      ? (" over " + std::to_string(hazard.steps) + " steps")
                            .c_str()
                      : "",
                  hazard_kind_description(hazard.kind));
    }
    return 0;
  }

  if (action != "score") {
    std::fprintf(stderr,
                 "usage: hazards list | describe NAME|SPEC | "
                 "score [PROFILE ...] [--json PATH] [--out-dir DIR]\n");
    return 2;
  }

  // Flags land in `args` because the shared option parser does not know
  // them; split them from the profile operands here.
  std::string json_path;
  std::string out_dir;
  std::vector<std::string> names;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--json" || args[i] == "--out-dir") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s requires a value\n", args[i].c_str());
        return 2;
      }
      std::string& into = args[i] == "--json" ? json_path : out_dir;
      into = args[++i];
    } else {
      names.push_back(args[i]);
    }
  }
  if (names.empty())
    for (const std::string& name : HazardProfile::preset_names())
      if (name != "baseline") names.push_back(name);

  std::vector<HazardProfile> profiles;
  for (const std::string& name : names) {
    std::string error;
    const auto profile = HazardProfile::parse(name, &error);
    if (!profile) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    profiles.push_back(*profile);
  }

  ScorecardConfig config;
  config.threads = front.pipeline.campaign.threads;
  config.deterministic_metrics = front.pipeline.deterministic_metrics;

  const HazardScore baseline = score_profile(HazardProfile{}, config);
  std::printf("scorecard (world seed %llu, hazard seed %llu)\n",
              static_cast<unsigned long long>(config.world_seed),
              static_cast<unsigned long long>(config.hazard_seed));
  print_score_row(baseline);
  std::vector<HazardScore> rows;
  for (const HazardProfile& profile : profiles) {
    rows.push_back(score_profile(profile, config));
    print_score_row(rows.back());
    if (!out_dir.empty() &&
        profile.find(HazardKind::kPeeringChurn) != nullptr) {
      const ChurnRun run = run_churn_sequence(profile, config);
      for (std::size_t t = 0; t < run.snapshots.size(); ++t) {
        const std::string path =
            out_dir + "/world_t" + std::to_string(t) + ".snap";
        std::string error;
        if (!save_snapshot_file(path, run.snapshots[t], &error)) {
          std::fprintf(stderr, "%s\n", error.c_str());
          return 1;
        }
      }
      std::printf("    wrote %zu churn-step snapshots to %s\n",
                  run.snapshots.size(), out_dir.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    write_scorecard_json(out, baseline, rows, config);
    std::printf("scorecard: wrote %s (%zu profiles)\n", json_path.c_str(),
                rows.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }
  const std::vector<std::string>& args = front.positional;
  const std::string command = !args.empty() ? args[0] : "all";
  const std::uint64_t seed =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 7;
  const std::string path = args.size() > 2 ? args[2] : "cloudmap_fabric.txt";

  if (command == "hazards") return cmd_hazards(args, front);
  if (!front.hazard_profile.empty()) {
    // World hazards are applied in make_world; the dataplane projection and
    // provenance label ride on the pipeline options. Churn emits world
    // sequences, which only `hazards score` and examples/longitudinal_churn
    // run — warn rather than silently half-apply it.
    apply_dataplane_hazards(front.pipeline, front.hazard_profile, seed);
    if (front.hazard_profile.find(HazardKind::kPeeringChurn) != nullptr)
      std::fprintf(stderr,
                   "note: churn hazard ignored by '%s' (longitudinal "
                   "sequences run under `hazards score`)\n",
                   command.c_str());
  }

  if (command == "worldgen") return cmd_worldgen(seed, front);
  if (command == "campaign") return cmd_campaign(seed, path, front);
  if (command == "merge-shards") return cmd_merge_shards(args, front);
  if (command == "analyze") return cmd_analyze(seed, path, front);
  if (command == "snapshot") {
    const std::string snap_path = args.size() > 2 ? args[2] : "cloudmap.snap";
    return cmd_snapshot(seed, snap_path, front);
  }
  if (command == "query") return cmd_query(args, front);
  if (command == "remote") return cmd_remote(args, front);
  if (command == "diff") return cmd_diff(args);
  if (command == "all") {
    if (const int rc = cmd_worldgen(seed, front)) return rc;
    if (const int rc = cmd_campaign(seed, path, front)) return rc;
    // The campaign pipeline already wrote the metrics artifact; analysis
    // reloads the fabric without re-running stages.
    FrontendOptions analyze_front = front;
    analyze_front.metrics_json.clear();
    analyze_front.metrics_csv.clear();
    return cmd_analyze(seed, path, analyze_front);
  }
  std::fprintf(stderr,
               "usage: %s [worldgen|campaign|analyze|all|snapshot] [seed] "
               "[file] | %s query FILE ACTION [ARG] | %s remote HOST:PORT "
               "ACTION [ARG] | merge-shards SEED PREFIX N OUT.snap | "
               "diff A B | hazards list|describe P|score "
               "[--threads N] [--metrics-json PATH] [--metrics-csv PATH] "
               "[--no-metrics] [--snapshot PATH] [--retry-budget N] "
               "[--retry-backoff T] [--response-scale X] [--host-response X] "
               "[--deterministic-metrics] [--min-confidence X] "
               "[--hazard-profile P] [--shard I/N] [--shard-round R]\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
