// cloudmap_cli — an operator-style command-line front end that separates
// collection from analysis, the way a real multi-day campaign works:
//
//   cloudmap_cli worldgen [seed]          summarize the synthetic world
//   cloudmap_cli campaign [seed] [file]   run both rounds, save the fabric
//   cloudmap_cli analyze  [seed] [file]   load a saved fabric and report
//   cloudmap_cli all      [seed]          everything in one process
//
// Shared flags (parsed by cloudmap::options_from_env_and_args, so the CLI,
// the examples, and the benches agree on validation and precedence):
//   --threads N          campaign worker count (0 = one per hardware thread,
//                        the default; results are identical for every value)
//   --metrics-json PATH  write the per-stage metrics artifact after the run
//                        (campaign/all run the FULL pipeline — VPI detection
//                        and pinning included — so the artifact covers every
//                        stage; the saved fabric is unaffected)
//   --metrics-csv PATH   same accounting as flat stage,metric,value rows
//   --no-metrics         disable metrics collection entirely
//   CLOUDMAP_THREADS / CLOUDMAP_METRICS_JSON environment equivalents
//
// With no arguments it runs `all 7`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/graph.h"
#include "analysis/grouping.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "io/serialize.h"

using namespace cloudmap;

namespace {

World make_world(std::uint64_t seed) {
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = seed;
  return generate_world(config);
}

int cmd_worldgen(std::uint64_t seed) {
  const World world = make_world(seed);
  std::printf("world (seed %llu)\n", static_cast<unsigned long long>(seed));
  std::printf("  metros        %zu\n", world.metros.size());
  std::printf("  colos         %zu\n", world.colos.size());
  std::printf("  IXPs          %zu\n", world.ixps.size());
  std::printf("  regions       %zu\n", world.regions.size());
  std::printf("  ASes          %zu\n", world.ases.size());
  std::printf("  routers       %zu\n", world.routers.size());
  std::printf("  interfaces    %zu\n", world.interfaces.size());
  std::printf("  links         %zu\n", world.links.size());
  std::printf("  interconnects %zu\n", world.interconnects.size());
  std::size_t by_kind[3] = {0, 0, 0};
  std::size_t private_vpis = 0;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    ++by_kind[static_cast<int>(ic.kind)];
    if (ic.private_address) ++private_vpis;
  }
  std::printf("    public IXP %zu, cross-connect %zu, VPI %zu "
              "(%zu private-address)\n",
              by_kind[0], by_kind[1], by_kind[2], private_vpis);
  const std::string issue = world.validate();
  std::printf("  validate: %s\n", issue.empty() ? "ok" : issue.c_str());
  return issue.empty() ? 0 : 1;
}

// Write the metrics artifacts the front end asked for; 0 on success.
int emit_metrics(const Pipeline& pipeline, const FrontendOptions& front) {
  if (!front.metrics_json.empty()) {
    std::ofstream out(front.metrics_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_json.c_str());
      return 1;
    }
    pipeline.write_metrics_json(out);
    std::printf("metrics: wrote %s (%zu stages)\n",
                front.metrics_json.c_str(), pipeline.reports().size());
  }
  if (!front.metrics_csv.empty()) {
    std::ofstream out(front.metrics_csv);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_csv.c_str());
      return 1;
    }
    pipeline.write_metrics_csv(out);
    std::printf("metrics: wrote %s\n", front.metrics_csv.c_str());
  }
  return 0;
}

int cmd_campaign(std::uint64_t seed, const std::string& path,
                 const FrontendOptions& front) {
  const World world = make_world(seed);
  Pipeline pipeline(world, front.pipeline);
  if (front.metrics_json.empty() && front.metrics_csv.empty()) {
    pipeline.run_until(StageId::kAliasVerification);  // rounds + §5
  } else {
    // A metrics artifact was requested: run every stage so the report
    // covers the whole pipeline. VPI detection and pinning never modify
    // the fabric, so the file written below is byte-identical either way.
    pipeline.run_all();
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  write_fabric(out, pipeline.campaign().fabric());
  std::printf("campaign done: %zu segments saved to %s\n",
              pipeline.campaign().fabric().segments().size(), path.c_str());
  std::printf("  round1 left-cloud %.1f%%, %llu traceroutes\n",
              100.0 * pipeline.round1().left_cloud_fraction(),
              static_cast<unsigned long long>(pipeline.round1().traceroutes));
  return emit_metrics(pipeline, front);
}

int cmd_analyze(std::uint64_t seed, const std::string& path,
                const FrontendOptions& front) {
  const World world = make_world(seed);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s (run `campaign` first)\n",
                 path.c_str());
    return 1;
  }
  const Fabric fabric = read_fabric(in);
  std::printf("loaded fabric: %zu segments, %zu ABIs, %zu CBIs\n",
              fabric.segments().size(), fabric.unique_abis().size(),
              fabric.unique_cbis().size());

  // Datasets rebuild deterministically from the same seed, so offline
  // analysis matches the collection run.
  Pipeline pipeline(world, front.pipeline);
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  PeeringClassifier classifier(&annotator, &pipeline.snapshot_round2(),
                               pipeline.subject_asns(), nullptr);
  const GroupBreakdown groups = breakdown(fabric, classifier);
  std::printf("peer ASes: %zu (public %zu, private non-BGP %zu, "
              "private BGP %zu)\n",
              groups.total_ases, groups.pb.ases.size(),
              groups.pr_nb.ases.size(), groups.pr_b.ases.size());
  const IcgStats icg = icg_stats(fabric);
  std::printf("ICG: %zu nodes, %zu edges, largest component %.1f%%\n",
              icg.abi_nodes + icg.cbi_nodes, icg.edges,
              100.0 * icg.largest_component_fraction);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }
  const std::vector<std::string>& args = front.positional;
  const std::string command = !args.empty() ? args[0] : "all";
  const std::uint64_t seed =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 7;
  const std::string path = args.size() > 2 ? args[2] : "cloudmap_fabric.txt";

  if (command == "worldgen") return cmd_worldgen(seed);
  if (command == "campaign") return cmd_campaign(seed, path, front);
  if (command == "analyze") return cmd_analyze(seed, path, front);
  if (command == "all") {
    if (const int rc = cmd_worldgen(seed)) return rc;
    if (const int rc = cmd_campaign(seed, path, front)) return rc;
    // The campaign pipeline already wrote the metrics artifact; analysis
    // reloads the fabric without re-running stages.
    FrontendOptions analyze_front = front;
    analyze_front.metrics_json.clear();
    analyze_front.metrics_csv.clear();
    return cmd_analyze(seed, path, analyze_front);
  }
  std::fprintf(stderr,
               "usage: %s [worldgen|campaign|analyze|all] [seed] [file] "
               "[--threads N] [--metrics-json PATH] [--metrics-csv PATH] "
               "[--no-metrics]\n",
               argv[0]);
  return 2;
}
