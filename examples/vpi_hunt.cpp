// VPI hunting scenario (§7.1): after mapping the subject cloud's fabric,
// probe the CBI target pool from a configurable set of foreign clouds and
// watch the lower bound grow cloud by cloud — then compare against the
// planted ground truth, which the paper never had.
#include <cstdio>

#include "core/options.h"
#include "core/pipeline.h"
#include "vpi/detector.h"

using namespace cloudmap;

int main(int argc, char** argv) {
  const FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 77;
  // Make VPIs common so the scenario is rich even in a small world.
  config.enterprise_vpi = 0.6;
  config.vpi_shared_port = 0.8;
  const World world = generate_world(config);

  Pipeline pipeline(world, front.pipeline);
  pipeline.run_until(StageId::kAliasVerification);  // campaign + verification

  std::printf("mapped fabric: %zu CBIs\n",
              pipeline.campaign().fabric().unique_cbis().size());

  // Probe clouds one at a time to show the marginal value of each vantage.
  Annotator annotator = pipeline.annotator();
  annotator.set_snapshot(&pipeline.snapshot_round2());
  VpiDetector detector(world, pipeline.forwarder(), annotator, 99);
  const VpiDetectionResult result = detector.detect(
      pipeline.campaign(),
      {CloudProvider::kMicrosoft, CloudProvider::kGoogle, CloudProvider::kIbm,
       CloudProvider::kOracle});

  std::printf("\n%-12s %10s %12s\n", "cloud", "pairwise", "cumulative");
  for (const VpiCloudResult& cloud : result.per_cloud) {
    std::printf("%-12s %10zu %12zu\n", to_string(cloud.provider),
                cloud.overlap, cloud.cumulative_overlap);
  }

  // Ground-truth audit: how much of the true VPI population did the
  // overlap method recover, and what is invisible in principle?
  std::size_t total_vpis = 0;
  std::size_t private_vpis = 0;
  std::size_t single_cloud = 0;
  std::size_t detectable = 0;
  std::unordered_map<std::uint32_t, std::unordered_set<int>> port_clouds;
  for (const GroundTruthInterconnect& ic : world.interconnects) {
    if (ic.kind != PeeringKind::kVpi) continue;
    if (ic.cloud == CloudProvider::kAmazon) {
      ++total_vpis;
      if (ic.private_address) ++private_vpis;
    }
    if (!ic.private_address && ic.shared_port_address)
      port_clouds[world.interface(ic.client_interface).address.value()]
          .insert(static_cast<int>(ic.cloud));
  }
  for (const auto& [address, clouds] : port_clouds) {
    (void)address;
    if (clouds.size() >= 2) ++detectable;
    else ++single_cloud;
  }
  std::printf("\nground truth: %zu Amazon VPIs (%zu private-address — "
              "invisible in principle)\n",
              total_vpis, private_vpis);
  std::printf("shared ports: %zu multi-cloud (detectable), %zu single-cloud "
              "(invisible to the overlap method)\n",
              detectable, single_cloud);

  // Router-level audit: an overlapping CBI implies its router is directly
  // connected to two or more clouds (the §7.1 inference); detected routers
  // never exceed that true multi-cloud client population.
  std::unordered_map<std::uint32_t, std::unordered_set<int>> router_clouds;
  for (const GroundTruthInterconnect& ic : world.interconnects)
    if (!ic.private_address)
      router_clouds[world.interface(ic.client_interface).router.value]
          .insert(static_cast<int>(ic.cloud));
  std::size_t true_routers = 0;
  for (const auto& [router, clouds] : router_clouds)
    if (clouds.size() >= 2) ++true_routers;
  std::unordered_set<std::uint32_t> detected_routers;
  std::size_t detected_multi_cloud = 0;
  for (const std::uint32_t cbi : result.vpi_cbis) {
    const InterfaceId iface = world.find_interface(Ipv4(cbi));
    if (!iface.valid()) continue;
    const std::uint32_t router = world.interface(iface).router.value;
    if (!detected_routers.insert(router).second) continue;
    const auto it = router_clouds.find(router);
    if (it != router_clouds.end() && it->second.size() >= 2)
      ++detected_multi_cloud;
  }
  std::printf("detected %zu CBI addresses on %zu client routers; %zu of "
              "those are truly multi-cloud-connected, out of %zu such "
              "routers in ground truth — a lower bound, as §7.1 argues\n",
              result.vpi_cbis.size(), detected_routers.size(),
              detected_multi_cloud, true_routers);
  if (detected_routers.size() > detected_multi_cloud) {
    std::printf("(%zu detections sit on interior interfaces of multi-cloud "
                "transit ASes — the Fig. 2 address-sharing ambiguity "
                "replayed from two clouds at once; the AS-level claim "
                "\"this network meets several clouds\" still holds, the "
                "per-interface VPI label is the method's known failure "
                "mode, §7.1)\n",
                detected_routers.size() - detected_multi_cloud);
  }
  return 0;
}
