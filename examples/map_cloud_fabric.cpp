// Full mapping campaign: generate a paper-shape world, run both traceroute
// rounds, verification, VPI detection, and pinning, then write the complete
// inferred fabric as CSV reports (one row per interconnection, one per peer
// AS) — the artifact a measurement study would publish.
//
// Output: cloudmap_interconnections.csv and cloudmap_peers.csv in the
// working directory.
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "analysis/grouping.h"
#include "core/options.h"
#include "core/pipeline.h"

using namespace cloudmap;

int main(int argc, char** argv) {
  const FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }
  GeneratorConfig config = GeneratorConfig::paper_shape();
  config.seed = 2026;
  const World world = generate_world(config);
  std::printf("generated world: %zu ASes, %zu routers, %zu interconnects\n",
              world.ases.size(), world.routers.size(),
              world.interconnects.size());

  Pipeline pipeline(world, front.pipeline);
  pipeline.run_all();
  std::printf("campaign done: %zu segments, %zu CBIs, %zu peer ASes\n",
              pipeline.campaign().fabric().segments().size(),
              pipeline.campaign().fabric().unique_cbis().size(),
              pipeline.peer_asns().size());

  const PeeringClassifier classifier = pipeline.classifier();
  const PinningResult& pins = pipeline.pinning();

  // Per-interconnection report.
  {
    std::ofstream out("cloudmap_interconnections.csv");
    out << "abi,cbi,peer_asn,group,confirmation,shifted,regions,"
           "abi_metro,cbi_metro\n";
    for (const InferredSegment& segment :
         pipeline.campaign().fabric().segments()) {
      const Asn owner = classifier.segment_owner(segment);
      const auto group = classifier.classify(segment);
      auto metro_of = [&](Ipv4 address) -> std::string {
        const auto pin = pins.pins.find(address.value());
        if (pin == pins.pins.end()) return "unpinned";
        return world.metro(pin->second.metro).name;
      };
      out << segment.abi.to_string() << ',' << segment.cbi.to_string() << ','
          << owner.value << ',' << (group ? to_string(*group) : "unknown")
          << ',' << to_string(segment.confirmation) << ','
          << (segment.shifted ? 1 : 0) << ',' << segment.regions.size() << ','
          << metro_of(segment.abi) << ',' << metro_of(segment.cbi) << '\n';
    }
  }

  // Per-peer report.
  {
    std::map<std::uint32_t, std::size_t> cbis_per_peer;
    std::map<std::uint32_t, std::set<std::string>> groups_per_peer;
    for (const InferredSegment& segment :
         pipeline.campaign().fabric().segments()) {
      const Asn owner = classifier.segment_owner(segment);
      if (owner.is_unknown()) continue;
      ++cbis_per_peer[owner.value];
      if (const auto group = classifier.classify(segment))
        groups_per_peer[owner.value].insert(to_string(*group));
    }
    std::ofstream out("cloudmap_peers.csv");
    out << "peer_asn,interconnections,groups\n";
    for (const auto& [asn, count] : cbis_per_peer) {
      out << asn << ',' << count << ',';
      bool first = true;
      for (const std::string& group : groups_per_peer[asn]) {
        if (!first) out << ';';
        out << group;
        first = false;
      }
      out << '\n';
    }
    std::printf("wrote cloudmap_interconnections.csv and cloudmap_peers.csv "
                "(%zu peers)\n",
                cbis_per_peer.size());
  }

  const InferenceScore score = pipeline.score();
  std::printf("ground truth check: %.0f%% of discoverable interconnects "
              "found at router level (%.0f%% exact interface)\n",
              100.0 * score.router_recall(), 100.0 * score.recall());

  if (!front.metrics_json.empty()) {
    std::ofstream out(front.metrics_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", front.metrics_json.c_str());
      return 1;
    }
    pipeline.write_metrics_json(out);
    std::printf("metrics: wrote %s\n", front.metrics_json.c_str());
  }
  return 0;
}
