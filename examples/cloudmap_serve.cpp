// cloudmap_serve — the snapshot-serving query daemon. Maps a format-v3
// snapshot zero-copy (io/mapped_snapshot.h), binds a loopback TCP port, and
// answers framed QueryRequests (serve/protocol.h) from any number of
// concurrent clients until told to stop. The served snapshot can be
// hot-swapped at any time — `cloudmap_cli remote HOST:PORT swap PATH` —
// without dropping a single in-flight query (serve/server.h).
//
//   cloudmap_serve --snapshot FILE [--port N] [--max-clients N]
//                  [--no-metrics]
//
// With --port 0 (the default) the kernel picks a free port; the daemon
// prints `listening on 127.0.0.1:PORT` once ready, so scripts can scrape
// the port from the first output line (see the serve-smoke CI job). Talk to
// it with `cloudmap_cli remote 127.0.0.1:PORT counts` and friends.
//
// Environment equivalents: CLOUDMAP_SERVE_SNAPSHOT, CLOUDMAP_SERVE_PORT,
// CLOUDMAP_SERVE_MAX_CLIENTS (flags override).
#include <cstdio>
#include <string>

#include "core/options.h"
#include "obs/metrics.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  const cloudmap::ServeOptions options =
      cloudmap::serve_options_from_env_and_args(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.error.c_str());
    return 2;
  }
  if (options.snapshot_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --snapshot FILE [--port N] [--max-clients N] "
                 "[--no-metrics]\n",
                 argv[0]);
    return 2;
  }

  cloudmap::MetricsRegistry registry(options.metrics);
  cloudmap::serve::Server::Config config;
  config.port = options.port;
  config.max_clients = options.max_clients;
  cloudmap::serve::Server server(config, &registry);

  std::string error;
  if (!server.start(options.snapshot_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::printf("serving %s (max %d clients)\n", options.snapshot_path.c_str(),
              options.max_clients);
  std::fflush(stdout);

  server.wait();

  const cloudmap::serve::ServerStats stats = server.stats();
  std::printf("stopped: served %llu, failed %llu, swaps %llu\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.swaps));
  return 0;
}
