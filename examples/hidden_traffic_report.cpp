// The paper's headline question, as a report: how much of a cloud's peering
// fabric — and which kinds of clients — "go hiding" from conventional
// measurement? Walks the six groups, the hybrid combinations, and the DNS
// evidence to produce the §7 narrative for one synthetic world.
#include <cstdio>
#include <unordered_set>

#include "analysis/dns_evidence.h"
#include "analysis/grouping.h"
#include "core/options.h"
#include "core/pipeline.h"

using namespace cloudmap;

int main(int argc, char** argv) {
  const FrontendOptions front = options_from_env_and_args(argc, argv);
  if (!front.ok()) {
    std::fprintf(stderr, "%s\n", front.error.c_str());
    return 2;
  }
  GeneratorConfig config = GeneratorConfig::small();
  config.seed = 9;
  const World world = generate_world(config);
  Pipeline pipeline(world, front.pipeline);
  pipeline.run_all();

  const PeeringClassifier classifier = pipeline.classifier();
  const GroupBreakdown b = breakdown(pipeline.campaign().fabric(), classifier);

  std::printf("peer ASes by visibility class\n");
  std::printf("-----------------------------\n");
  struct RowSpec {
    PeeringGroup group;
    const char* story;
  };
  const RowSpec rows[] = {
      {PeeringGroup::kPbNb,
       "public at an IXP, invisible in BGP (edge networks)"},
      {PeeringGroup::kPbB, "public at an IXP, visible (tier-2 transit)"},
      {PeeringGroup::kPrNbV, "virtual private interconnections (VPIs)"},
      {PeeringGroup::kPrNbNv,
       "private cross-connects and undetected VPIs"},
      {PeeringGroup::kPrBNv, "large transit cross-connects (BGP-visible)"},
      {PeeringGroup::kPrBV, "connectivity partners' own VPIs"},
  };
  for (const RowSpec& row : rows) {
    const GroupRow& group = b.rows[static_cast<int>(row.group)];
    std::printf("  %-9s %4zu ASes, %4zu interconnections — %s\n",
                to_string(row.group), group.ases.size(), group.cbis.size(),
                row.story);
  }

  // Which traffic bypasses public measurement entirely?
  std::unordered_set<std::uint32_t> hidden_ases = b.pr_nb.ases;
  for (const std::uint32_t as :
       b.rows[static_cast<int>(PeeringGroup::kPrBV)].ases)
    hidden_ases.insert(as);
  std::printf("\n%zu of %zu peer ASes (%.0f%%) reach the cloud over "
              "peerings no public BGP feed will ever show.\n",
              hidden_ases.size(), b.total_ases,
              100.0 * hidden_ases.size() /
                  static_cast<double>(b.total_ases));

  // Hybrid strategies: who splits traffic across channels?
  const auto hybrid = hybrid_breakdown(pipeline.campaign().fabric(),
                                       classifier);
  std::size_t multi_channel = 0;
  for (const HybridRow& row : hybrid)
    if (row.combo.size() >= 2) multi_channel += row.as_count;
  std::printf("%zu ASes run hybrid connectivity — part of their traffic on "
              "the public Internet, part over private channels (§10's "
              "closing point).\n",
              multi_channel);

  // The dxvif/VLAN smoking gun for undetected VPIs.
  const DnsEvidence evidence = dns_vpi_evidence(
      pipeline.campaign().fabric(), classifier, pipeline.dns());
  const auto& pr_nb_nv =
      evidence.groups[static_cast<int>(PeeringGroup::kPrNbNv)];
  const auto& pr_nb_v =
      evidence.groups[static_cast<int>(PeeringGroup::kPrNbV)];
  std::printf("\nDNS evidence: %zu dx-keyword and %zu VLAN-tagged names in "
              "Pr-nB-nV, %zu/%zu in Pr-nB-V — interconnections the overlap "
              "method could not label virtual, but whose names say they "
              "are (§7.3).\n",
              pr_nb_nv.dx_keyword, pr_nb_nv.vlan_tagged, pr_nb_v.dx_keyword,
              pr_nb_v.vlan_tagged);
  return 0;
}
