// Fuzz the CMSHARD2 part-file reader and the two-part merge. The readers
// throw std::runtime_error on corruption by contract — that is the clean
// rejection path — so the harness catches exactly that type; anything else
// (crash, sanitizer report, unbounded allocation) is a finding.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fixup.h"
#include "harness.h"
#include "io/shard.h"

namespace {

void drain_part(const std::string& path) {
  cloudmap::ShardPartReader reader;
  std::string error;
  if (!reader.open(path, &error)) return;
  std::uint64_t item = 0;
  cloudmap::Campaign::SweepChunkResult result;
  try {
    while (reader.next(item, result)) {
    }
  } catch (const std::runtime_error&) {
    // Diagnosed corruption: the contract.
  }
}

void drain_merge(const std::vector<std::string>& paths) {
  cloudmap::ShardMerge merge;
  std::string error;
  if (!merge.open(paths, &error)) return;
  cloudmap::Campaign::SweepChunkResult result;
  try {
    while (merge.next(result)) {
    }
  } catch (const std::runtime_error&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzzhn::maybe_trip_canary(data, size);

  fuzzhn::ScratchFile whole(data, size);
  if (!whole.ok()) return 0;
  drain_part(whole.path());
  drain_merge({whole.path()});

  // Two-part merge: offer the two halves of the input as a part set, so
  // the cross-part consistency checks (digest, totals, coverage) see
  // independently mutated headers.
  const std::size_t half = size / 2;
  fuzzhn::ScratchFile first(data, half);
  fuzzhn::ScratchFile second(data + half, size - half);
  if (first.ok() && second.ok())
    drain_merge({first.path(), second.path()});
  return 0;
}

#ifdef CLOUDMAP_FUZZER_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned seed) {
  (void)seed;
  const std::size_t mutated = LLVMFuzzerMutate(data, size, max_size);
  fuzzhn::fix_shard(data, mutated);
  return mutated;
}
#endif
