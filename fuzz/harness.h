// Shared scaffolding for the libFuzzer harnesses and the corpus-replay
// drivers. Each fuzz_<surface>.cpp defines LLVMFuzzerTestOneInput; the same
// translation unit links either against libFuzzer (-fsanitize=fuzzer, the
// CLOUDMAP_FUZZ CMake option) or against replay_main.cpp, a plain main()
// that feeds every committed corpus file through the harness so the gcc
// dev container executes the whole corpus on every build, no clang or
// sanitizer required.
#pragma once

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace fuzzhn {

// CI's seeded-crash prove-it: with CLOUDMAP_FUZZ_CANARY set in the
// environment, this exact 16-byte input aborts the process. The CI fuzz
// job plants it and asserts the pipeline reports the crash — proving the
// harness actually executes inputs and that a real crash would be caught.
// Without the environment knob the input is inert, so corpus replay and
// local fuzzing can never trip it by accident.
inline constexpr char kCanary[16] = {'C', 'L', 'O', 'U', 'D', 'M', 'A', 'P',
                                     '-', 'C', 'A', 'N', 'A', 'R', 'Y', '!'};

inline void maybe_trip_canary(const std::uint8_t* data, std::size_t size) {
  if (size != sizeof(kCanary) ||
      std::memcmp(data, kCanary, sizeof(kCanary)) != 0)
    return;
  // lint: env-ok(CI-only crash canary; harness inputs stay deterministic)
  if (std::getenv("CLOUDMAP_FUZZ_CANARY") != nullptr) __builtin_trap();
}

// The fuzz input as an anonymous in-memory file: the shard reader and the
// zero-copy snapshot mapper take paths, so each iteration materializes the
// buffer behind /proc/self/fd without touching a disk.
class ScratchFile {
 public:
  ScratchFile(const std::uint8_t* data, std::size_t size) {
    fd_ = ::memfd_create("cloudmap-fuzz", 0);
    if (fd_ < 0) return;
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n = ::write(fd_, data + done, size - done);
      if (n <= 0) {
        ::close(fd_);
        fd_ = -1;
        return;
      }
      done += static_cast<std::size_t>(n);
    }
    path_ = "/proc/self/fd/" + std::to_string(fd_);
  }
  ~ScratchFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  ScratchFile(const ScratchFile&) = delete;
  ScratchFile& operator=(const ScratchFile&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace fuzzhn
