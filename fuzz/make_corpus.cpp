// Deterministic seed-corpus generator. Writes the committed corpus under
// fuzz/corpus/{snapshot,shard,wire}/ using the repo's own encoders: valid
// inputs that reach deep into section/record/payload parsing (the mutators
// keep their envelopes valid), plus hand-forged regression inputs — one per
// parser bug class fixed by the hardening pass — so corpus replay re-checks
// every fix on every build.
//
//   cloudmap_make_corpus <repo>/fuzz/corpus
//
// Output is a pure function of this file: regenerating must be a no-op
// unless the wire formats changed (then re-run and commit the result).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/shard.h"
#include "io/snapshot.h"
#include "io/wire.h"
#include "serve/protocol.h"

namespace {

using namespace cloudmap;

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n",
                 path.string().c_str());
    std::exit(1);
  }
}

void patch_u32(std::string& bytes, std::size_t offset, std::uint32_t value) {
  for (std::size_t i = 0; i < 4; ++i)
    bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
}

std::uint32_t crc_of(const std::string& bytes, std::size_t offset,
                     std::size_t size) {
  return snapshot_crc32(
      reinterpret_cast<const unsigned char*>(bytes.data()) + offset, size);
}

// A snapshot exercising every section and optional field (same shape as
// the tests' sample_snapshot, duplicated here so the corpus does not
// depend on the test tree).
RunSnapshot sample_snapshot() {
  RunSnapshot snap;
  snap.seed = 424242;
  snap.threads = 3;
  snap.subject = 0;

  SnapshotSegment seg;
  seg.abi = Ipv4(10, 0, 0, 2);
  seg.cbi = Ipv4(203, 0, 113, 9);
  seg.prior_abi = Ipv4(10, 0, 0, 1);
  seg.post_cbi = Ipv4(203, 0, 113, 10);
  seg.first_round = 2;
  seg.confirmation = Confirmation::kReachability;
  seg.shifted = true;
  seg.ixp = true;
  seg.peer_asn = Asn{64512};
  seg.peer_org = OrgId{7};
  seg.group = 1;
  seg.regions = {1, 3, 5};
  seg.dest_slash24s = {0xC0000200u, 0xCB007100u};
  seg.observations = 7;
  seg.rounds_mask = 0b11;
  seg.hop_density = 0.875;
  seg.confidence = 0.625;

  SnapshotSegment other;
  other.abi = Ipv4(10, 0, 0, 1);
  other.cbi = Ipv4(198, 51, 100, 4);
  other.confirmation = Confirmation::kIxpClient;
  other.vpi = true;
  other.owner_hint = Asn{64500};
  other.observations = 1;
  other.rounds_mask = 0b01;
  other.hop_density = 1.0;
  other.confidence = 0.75;

  snap.segments = {seg, other};
  snap.pins.push_back({0x0A000001u, 2, 0, 1, 0});
  snap.pins.push_back({0xCB007109u, 4, 1, 2, 1});
  snap.regional = {{0xC6336404u, 9}};
  snap.alias_sets = {{0x0A000002u, 0xCB007109u}};

  StageReport report;
  report.id = StageId::kRound1;
  report.threads = 3;
  report.workers = 2;
  report.wall_ms = 12.5;
  report.targets = 100;
  report.traceroutes = 99;
  report.probes = 1234;
  report.bgp_cache_hits = 7;
  report.bgp_cache_misses = 2;
  report.retries = 11;
  report.backoff_waits = 11;
  report.backoff_ticks = 704;
  report.recovered_targets = 5;
  report.worker_utilization = 0.75;
  report.tallies = {{"left_cloud", 42.0}};
  snap.stage_reports = {report};
  return snap;
}

std::string snapshot_bytes(const RunSnapshot& snap, std::uint16_t version) {
  std::ostringstream out;
  save_snapshot(out, snap, version);
  return out.str();
}

void emit_snapshot_corpus(const std::filesystem::path& dir) {
  const RunSnapshot sample = sample_snapshot();
  write_file(dir / "v1.snap", snapshot_bytes(sample, 1));
  write_file(dir / "v2.snap", snapshot_bytes(sample, 2));
  write_file(dir / "v3.snap", snapshot_bytes(sample, 3));

  RunSnapshot hazard = sample;
  hazard.hazard_profile = "loss:p=0.25;churn:rounds=2";
  hazard.hazard_metrics = {{"f1_delta", -0.125}, {"recall", 0.875}};
  write_file(dir / "v3-hazard.snap", snapshot_bytes(hazard, 3));

  write_file(dir / "empty.snap", snapshot_bytes(RunSnapshot{}, 3));

  // Regression: a v2 file whose segments section declares 0xFFFFFFFF
  // segments (section CRC re-stamped so the forgery reaches the decoder).
  // The count-vs-bytes cap must reject it without touching the allocator.
  std::string forged = snapshot_bytes(sample, 2);
  // Find the segments section (id 2) in the table: u32 count at offset 8,
  // then count × 24-byte entries of { u32 id, u64 offset, u64 size,
  // u32 CRC }. Its payload starts with the u32 segment count.
  std::uint32_t section_count = 0;
  for (std::size_t i = 0; i < 4; ++i)
    section_count |= std::uint32_t{
        static_cast<unsigned char>(forged[8 + i])} << (8 * i);
  std::size_t entry = 0;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (static_cast<unsigned char>(forged[12 + s * 24]) == 2) {
      entry = 12 + s * 24;
      break;
    }
  }
  if (entry == 0) {
    std::fprintf(stderr, "make_corpus: no segments section in v2 file\n");
    std::exit(1);
  }
  std::uint64_t seg_off = 0;
  std::uint64_t seg_size = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    seg_off |= std::uint64_t{
        static_cast<unsigned char>(forged[entry + 4 + i])} << (8 * i);
    seg_size |= std::uint64_t{
        static_cast<unsigned char>(forged[entry + 12 + i])} << (8 * i);
  }
  patch_u32(forged, static_cast<std::size_t>(seg_off), 0xFFFFFFFFu);
  patch_u32(forged, entry + 20,
            crc_of(forged, static_cast<std::size_t>(seg_off),
                   static_cast<std::size_t>(seg_size)));
  write_file(dir / "regress-forged-segment-count.snap", forged);
}

Campaign::SweepChunkResult sample_result(std::uint32_t salt) {
  Campaign::SweepChunkResult result;
  result.traceroutes = 3 + salt;
  result.probes = 40 + salt;
  result.retried_targets = 1;
  result.retries = 2;
  result.backoff_waits = 1;
  result.backoff_ticks = 16;
  result.recovered_targets = 1;
  result.walk.examined = 3 + salt;
  result.walk.extracted = 2;
  result.walk.never_left_cloud = 1;
  result.adjacencies = {{0x0A000001u + salt, 0x0A000002u + salt}};
  CandidateSegment segment;
  segment.cbi = Ipv4(203, 0, 113, static_cast<std::uint8_t>(9 + salt));
  segment.abi = Ipv4(10, 0, 0, static_cast<std::uint8_t>(2 + salt));
  segment.prior_abi = Ipv4(10, 0, 0, 1);
  segment.post_cbi = Ipv4(203, 0, 113, 10);
  segment.destination = Ipv4(198, 51, 100, 7);
  segment.region = RegionId{1 + salt};
  segment.abi_rtt_ms = 12.5;
  segment.cbi_rtt_ms = 14.25;
  segment.hop_density = 0.75;
  result.segments = {segment};
  return result;
}

std::string shard_part_bytes(std::uint32_t shard_index,
                             std::uint32_t shard_count,
                             std::uint64_t total_items,
                             const std::filesystem::path& scratch) {
  ShardPartHeader header;
  header.config_digest = shard_digest("fuzz-corpus-seed");
  header.round = 1;
  header.shard_index = shard_index;
  header.shard_count = shard_count;
  header.total_items = total_items;
  header.target_count = total_items;

  ShardPartWriter writer;
  std::string error;
  if (!writer.open(scratch.string(), header, &error)) {
    std::fprintf(stderr, "make_corpus: %s\n", error.c_str());
    std::exit(1);
  }
  for (std::uint64_t item = shard_index; item < total_items;
       item += shard_count) {
    if (!writer.append(item, sample_result(static_cast<std::uint32_t>(item)),
                       &error)) {
      std::fprintf(stderr, "make_corpus: %s\n", error.c_str());
      std::exit(1);
    }
  }
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "make_corpus: %s\n", error.c_str());
    std::exit(1);
  }
  std::ifstream in(scratch, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::filesystem::remove(scratch);
  return bytes;
}

void emit_shard_corpus(const std::filesystem::path& dir) {
  const std::filesystem::path scratch = dir / ".scratch.part";
  write_file(dir / "single.part", shard_part_bytes(0, 1, 3, scratch));
  // The two-part-merge half-split in fuzz_shard lines these up as a pair.
  const std::string part0 = shard_part_bytes(0, 2, 4, scratch);
  const std::string part1 = shard_part_bytes(1, 2, 4, scratch);
  write_file(dir / "pair.parts", part0 + part1);
  write_file(dir / "part0of2.part", part0);

  // Regression: record 0 declares a ~4 GiB payload. The size-vs-remaining
  // cap must fail fast with a diagnostic, never allocate.
  std::string forged_size = shard_part_bytes(0, 1, 2, scratch);
  patch_u32(forged_size, 56 + 8, 0xFFFFFFF0u);
  write_file(dir / "regress-forged-payload-size.part", forged_size);

  // Regression: header declares 0x10000000 records in a tiny file; the
  // record-count-vs-file-size cap rejects it at open. Header CRC is
  // re-stamped so the forgery passes the integrity check and reaches the
  // cap (that is the code path under test).
  std::string forged_count = shard_part_bytes(0, 1, 2, scratch);
  patch_u32(forged_count, 44, 0x10000000u);
  patch_u32(forged_count, 48, 0);
  patch_u32(forged_count, 52, crc_of(forged_count, 0, 52));
  write_file(dir / "regress-forged-record-count.part", forged_count);

  // Regression: a record whose payload declares 0x20000000 adjacencies.
  // decode_result's bounded_count must refuse before the reserve. The
  // payload CRC is over the forged bytes, so the record passes CRC and
  // dies (cleanly) in the decoder.
  std::string forged_adj = shard_part_bytes(0, 1, 1, scratch);
  const std::size_t payload_start = 56 + 12;
  patch_u32(forged_adj, payload_start + 15 * 8, 0x20000000u);
  std::uint32_t payload_size = 0;
  for (std::size_t i = 0; i < 4; ++i)
    payload_size |= std::uint32_t{
        static_cast<unsigned char>(forged_adj[56 + 8 + i])} << (8 * i);
  patch_u32(forged_adj, payload_start + payload_size,
            crc_of(forged_adj, payload_start, payload_size));
  write_file(dir / "regress-forged-adjacency-count.part", forged_adj);
}

std::string frame_of(serve::MsgType type, const std::string& payload) {
  std::string out;
  serve::encode_frame(out, type, payload);
  return out;
}

void emit_wire_corpus(const std::filesystem::path& dir) {
  using namespace cloudmap::serve;

  QueryRequest query;
  query.kind = QueryKind::kPeersOf;
  query.asn = 64512;
  query.metro = 2;
  query.address = 0xCB007109u;
  query.min_confidence = 0.5;
  query.want_briefs = true;
  write_file(dir / "query.frame",
             frame_of(MsgType::kQuery, encode_query_request(query)));

  QueryResponse response;
  response.status = QueryStatus::kOk;
  response.kind = QueryKind::kLookup;
  response.items = {0, 1, 2};
  SegmentBrief brief;
  brief.index = 1;
  brief.abi = 0x0A000002u;
  brief.cbi = 0xCB007109u;
  brief.peer_asn = 64512;
  brief.confirmation = 2;
  brief.ixp = true;
  brief.vpi = false;
  brief.confidence = 0.625;
  response.briefs = {brief};
  response.counts.emplace();
  response.counts->segments = 2;
  response.counts->mean_confidence = 0.6875;
  response.histogram.emplace();
  response.histogram->segments = 2;
  response.histogram->mean = 0.6875;
  response.found = true;
  response.prefix_network = 0xCB007100u;
  response.prefix_length = 24;
  response.is_interface = true;
  response.role_cbi = true;
  write_file(dir / "reply.frame",
             frame_of(MsgType::kReply, encode_query_response(response)));

  ServerStats stats;
  stats.served = 128;
  stats.failed = 1;
  stats.swaps = 2;
  stats.clients = 3;
  const std::string stats_frame =
      frame_of(MsgType::kStats, encode_stats(stats));
  write_file(dir / "stats.frame", stats_frame);
  write_file(dir / "error.frame",
             frame_of(MsgType::kError, encode_text("no snapshot loaded")));
  write_file(dir / "ping.frame", frame_of(MsgType::kPing, ""));

  // A stream of several back-to-back frames, as the server's read loop
  // sees them.
  write_file(dir / "stream.frames",
             frame_of(MsgType::kPing, "") + stats_frame +
                 frame_of(MsgType::kQuery, encode_query_request(query)));

  // Regression: a query frame whose kind byte is out of range (9). The
  // decoder must reject it (checked enum read) — it used to be cast
  // straight into QueryKind. Frame CRC re-stamped over the forged body.
  std::string bad_kind = frame_of(MsgType::kQuery,
                                  encode_query_request(query));
  bad_kind[4 + 1] = 9;
  patch_u32(bad_kind, bad_kind.size() - 4,
            crc_of(bad_kind, 4, bad_kind.size() - 8));
  write_file(dir / "regress-bad-query-kind.frame", bad_kind);

  // Regression: a lookup reply whose prefix_length is 200 (must be ≤ 32).
  std::string bad_prefix = frame_of(MsgType::kReply,
                                    encode_query_response(response));
  bad_prefix[bad_prefix.size() - 4 - 4] = static_cast<char>(200);
  patch_u32(bad_prefix, bad_prefix.size() - 4,
            crc_of(bad_prefix, 4, bad_prefix.size() - 8));
  write_file(dir / "regress-bad-prefix-length.frame", bad_prefix);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: cloudmap_make_corpus <corpus-dir>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  for (const char* sub : {"snapshot", "shard", "wire"})
    std::filesystem::create_directories(root / sub);
  emit_snapshot_corpus(root / "snapshot");
  emit_shard_corpus(root / "shard");
  emit_wire_corpus(root / "wire");
  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
