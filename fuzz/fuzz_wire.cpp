// Fuzz the serve protocol: frame decode over an adversarial byte stream,
// then a strict decode→re-encode round trip of every payload codec on
// whatever decode_frame accepts. The codecs validate every field (enums in
// range, booleans exactly 0/1, counts capped against remaining bytes), so
// an accepted payload must re-encode to its exact input bytes — silent
// acceptance of non-canonical input is a finding, not just crashes.
#include <cstdint>
#include <cstring>
#include <string>

#include "fixup.h"
#include "harness.h"
#include "serve/protocol.h"

namespace {

using namespace cloudmap::serve;

void roundtrip_payload(const Frame& frame) {
  cloudmap::QueryRequest request;
  if (decode_query_request(frame.payload, request) &&
      encode_query_request(request) != frame.payload)
    __builtin_trap();
  cloudmap::QueryResponse response;
  if (decode_query_response(frame.payload, response) &&
      encode_query_response(response) != frame.payload)
    __builtin_trap();
  ServerStats stats;
  if (decode_stats(frame.payload, stats) &&
      encode_stats(stats) != frame.payload)
    __builtin_trap();
  std::string text;
  if (decode_text(frame.payload, text) &&
      encode_text(text) != frame.payload)
    __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzzhn::maybe_trip_canary(data, size);

  std::size_t pos = 0;
  while (pos < size) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const FrameStatus status =
        decode_frame(data + pos, size - pos, frame, consumed, &error);
    if (status != FrameStatus::kOk) {
      // kCorrupt/kIncomplete must come with untouched progress: consumed
      // is only meaningful on kOk. Stop at the first rejection, as the
      // server's read loop does.
      break;
    }
    if (consumed == 0 || consumed > size - pos) __builtin_trap();
    // Round trip the frame envelope: re-encoding the decoded frame must
    // reproduce the consumed bytes exactly.
    std::string reencoded;
    encode_frame(reencoded, frame.type, frame.payload);
    if (reencoded.size() != consumed ||
        std::memcmp(reencoded.data(), data + pos, consumed) != 0)
      __builtin_trap();
    roundtrip_payload(frame);
    pos += consumed;
  }
  return 0;
}

#ifdef CLOUDMAP_FUZZER_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned seed) {
  (void)seed;
  const std::size_t mutated = LLVMFuzzerMutate(data, size, max_size);
  fuzzhn::fix_wire(data, mutated);
  return mutated;
}
#endif
