// Structure-aware mutation fixups. libFuzzer's generic byte mutations are
// almost always rejected at the outermost validation layer (magic bytes,
// CRCs), so coverage never reaches section parsing. After each generic
// mutation, these helpers restore the container invariants — magic bytes
// back in place, CRCs recomputed over whatever the mutation produced — so
// the *interior* bytes stay adversarial while the envelope stays valid.
// Truly-broken envelopes are still exercised: the harnesses also run every
// input unfixed via the committed corpus, and libFuzzer keeps a fraction of
// raw mutations when the custom mutator is in play.
#pragma once

#include <cstdint>
#include <cstring>

#include "io/snapshot.h"

namespace fuzzhn {

inline std::uint32_t rd32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t rd64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline void wr32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

// CMSNAP container: restore the magic, then re-stamp every section-table
// CRC whose (offset, size) still lands inside the buffer. Out-of-range
// entries are left alone — they exercise the bounds rejections.
inline void fix_snapshot(std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kHeader = 12;      // magic + u16 version + u32 count
  constexpr std::size_t kEntry = 24;       // id + offset + size + crc
  if (size < kHeader) return;
  std::memcpy(data, "CMSNAP", 6);
  const std::uint32_t count = rd32(data + 8);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t entry = kHeader + std::size_t{i} * kEntry;
    if (entry + kEntry > size) break;
    const std::uint64_t offset = rd64(data + entry + 4);
    const std::uint64_t payload = rd64(data + entry + 12);
    if (offset > size || payload > size - offset) continue;
    wr32(data + entry + 20,
         cloudmap::snapshot_crc32(data + offset,
                                  static_cast<std::size_t>(payload)));
  }
}

// CMSHARD2 part: restore the magic, re-stamp the header CRC, then walk the
// records and re-stamp each payload CRC that still fits.
inline void fix_shard(std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kHeader = 56;
  if (size < kHeader) return;
  std::memcpy(data, "CMSHARD2", 8);
  wr32(data + kHeader - 4, cloudmap::snapshot_crc32(data, kHeader - 4));
  std::size_t pos = kHeader;
  while (pos + 12 <= size) {
    const std::uint32_t payload = rd32(data + pos + 8);
    const std::size_t body = pos + 12;
    if (payload > size - body || size - body - payload < 4) break;
    wr32(data + body + payload,
         cloudmap::snapshot_crc32(data + body, payload));
    pos = body + payload + 4;
  }
}

// Frame stream: re-stamp the trailing CRC of every complete frame in the
// buffer. A frame whose declared length runs past the end is left raw.
inline void fix_wire(std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  while (pos + 4 <= size) {
    const std::uint32_t length = rd32(data + pos);
    if (length < 5 || length > size - pos - 4) break;
    const std::uint8_t* body = data + pos + 4;
    wr32(data + pos + 4 + length - 4,
         cloudmap::snapshot_crc32(body, length - 4));
    pos += 4 + std::size_t{length};
  }
}

}  // namespace fuzzhn
