// Sanitizer-optional corpus replay: a plain main() linked against one
// harness's LLVMFuzzerTestOneInput. Each argument is a corpus file or a
// directory of them; every input runs through the harness in sorted order,
// so the committed corpus (seed inputs + minimized regression reproducers)
// executes as an ordinary ctest on every build — gcc, no libFuzzer, no
// sanitizers needed. Crashes and __builtin_trap() invariant failures abort
// the process, which ctest reports as a failure.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path.string());
    } else {
      std::fprintf(stderr, "replay: no such input: %s\n", argv[i]);
      return 1;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "replay: empty corpus — nothing executed\n");
    return 1;
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "replay: cannot read %s\n", file.c_str());
      return 1;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("replayed %zu corpus input(s)\n", files.size());
  return 0;
}
