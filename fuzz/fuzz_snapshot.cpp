// Fuzz the snapshot container end to end: the copying loader across
// format versions 1–3, the save→load→save byte-stability contract on
// anything it accepts, and the zero-copy MappedSnapshot → FabricView →
// QueryEngine derivation over the same bytes. Any crash, sanitizer report,
// or broken invariant (accepted input that does not re-save stably; mapper
// accepting what the loader refused) aborts.
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "fixup.h"
#include "harness.h"
#include "io/mapped_snapshot.h"
#include "io/snapshot.h"
#include "query/engine.h"
#include "query/fabric_view.h"
#include "query/request.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzzhn::maybe_trip_canary(data, size);
  using namespace cloudmap;

  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  std::string error;
  std::optional<RunSnapshot> snap = load_snapshot(in, &error);
  if (snap) {
    // Accepted input must re-save deterministically: save, reload, save
    // again, and the two saves must agree byte for byte.
    std::ostringstream first;
    save_snapshot(first, *snap);
    std::istringstream reload_in(first.str());
    std::optional<RunSnapshot> reloaded = load_snapshot(reload_in, &error);
    if (!reloaded) __builtin_trap();  // save emitted unloadable bytes
    std::ostringstream second;
    save_snapshot(second, *reloaded);
    if (first.str() != second.str()) __builtin_trap();
  }

  // The zero-copy path over the same bytes. v1/v2 files are refused here
  // by design; a file the mapper accepts but the loader refused means the
  // two validators disagree about what a well-formed v3 file is.
  fuzzhn::ScratchFile file(data, size);
  if (!file.ok()) return 0;
  std::optional<MappedSnapshot> mapped = MappedSnapshot::open(file.path(),
                                                              &error);
  if (mapped) {
    if (!snap) __builtin_trap();
    FabricView view(mapped->blob());
    QueryEngine engine(view);
    QueryRequest request;
    request.asn = 64512;
    request.metro = 0;
    request.address = 0xCB007109u;  // 203.0.113.9
    request.min_confidence = 0.5;
    request.want_briefs = true;
    for (std::uint8_t kind = 0; kind < kQueryKindCount; ++kind) {
      request.kind = static_cast<QueryKind>(kind);
      (void)engine.execute(request);
    }
  }
  return 0;
}

#ifdef CLOUDMAP_FUZZER_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned seed) {
  (void)seed;
  const std::size_t mutated = LLVMFuzzerMutate(data, size, max_size);
  fuzzhn::fix_snapshot(data, mutated);
  return mutated;
}
#endif
